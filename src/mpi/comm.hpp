// Mini-MPI communicators, requests and point-to-point operations over the
// simulated cluster.
//
// Ranks run SPMD as coroutines; every operation takes the caller's
// comm-local rank explicitly (the simulation equivalent of "which process
// am I"). Sub-communicators (node-local groups, the leader group) remap
// local ranks to global ranks and isolate matching via a context id folded
// into the wire tag, exactly like real MPI context ids.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "hw/buffer.hpp"
#include "hw/cluster.hpp"
#include "net/net.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "shm/shm.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace hmca::mpi {

inline constexpr int kAnySource = net::kAnySource;
inline constexpr int kAnyTag = net::kAnyTag;
inline constexpr int kMaxUserTag = (1 << 16) - 1;

class World;

/// Handle to a nonblocking operation. Copyable; wait via Comm::wait*.
class Request {
 public:
  Request() = default;
  bool valid() const noexcept { return static_cast<bool>(st_); }
  bool done() const noexcept { return st_ && st_->done; }

  /// Nonblocking completion probe (MPI_Test without the status). Throws
  /// std::invalid_argument on an invalid (default-constructed) request.
  bool test() const {
    if (!valid()) throw std::invalid_argument("Request::test: invalid request");
    return st_->done;
  }

  /// Run `fn` when the operation completes (immediately if it already
  /// did). This is the dataflow hook: a graph task depending on this
  /// recv/send registers an external-dependency release here instead of
  /// blocking a coroutine in wait(). Callbacks run in registration order
  /// at the completion's virtual time.
  void on_done(std::function<void()> fn) {
    if (!valid()) {
      throw std::invalid_argument("Request::on_done: invalid request");
    }
    if (st_->done) {
      fn();
      return;
    }
    st_->callbacks.push_back(std::move(fn));
  }

 private:
  friend class Comm;
  struct State {
    explicit State(sim::Engine& eng) : cv(eng) {}
    sim::Condition cv;
    bool done = false;
    std::vector<std::function<void()>> callbacks;
  };
  std::shared_ptr<State> st_;
};

class Comm {
 public:
  int size() const noexcept { return static_cast<int>(granks_.size()); }
  int ctx() const noexcept { return ctx_; }

  int to_global(int r) const { return granks_.at(static_cast<std::size_t>(r)); }
  /// Comm-local rank of a global rank, or -1 if not a member.
  int from_global(int g) const;

  // ---- Topology (comm-local rank arguments) ----
  int node_of(int r) const;
  int node_local_rank(int r) const;

  // ---- Point-to-point (comm-local ranks) ----
  sim::Task<void> send(int my, int dst, int tag, hw::BufView data);
  sim::Task<void> recv(int my, int src, int tag, hw::BufView out);
  Request isend(int my, int dst, int tag, hw::BufView data);
  Request irecv(int my, int src, int tag, hw::BufView out);
  /// Concurrent send+recv (the ring-step workhorse).
  sim::Task<void> sendrecv(int my, int dst, int stag, hw::BufView sdata,
                           int src, int rtag, hw::BufView rout);

  sim::Task<void> wait(Request r);
  sim::Task<void> wait_all(std::vector<Request> rs);
  /// Wait for any valid request in `rs` to complete; returns its index and
  /// invalidates that slot (MPI_Waitany). Throws std::invalid_argument when
  /// `rs` holds no valid request.
  sim::Task<std::size_t> wait_any(std::vector<Request>& rs);

  /// Synchronization barrier for harness/phase alignment. Costless in
  /// virtual time (rank coroutines align at max arrival time); the
  /// message-based dissemination barrier lives in coll/barrier.hpp.
  sim::Task<void> barrier(int my);

  /// Per-rank operation sequence number; SPMD-consistent, used to key
  /// node-shared objects for collective invocations.
  std::uint64_t next_op_seq(int my) {
    return op_seq_.at(static_cast<std::size_t>(my))++;
  }

  // ---- Environment access ----
  World& world() const noexcept { return *world_; }
  hw::Cluster& cluster() const noexcept;
  net::Net& net() const noexcept;
  shm::NodeShare& share() const noexcept;
  sim::Engine& engine() const noexcept;
  /// The world's observability channel (never null; defaults to the null
  /// sink). All collective instrumentation flows through this.
  obs::Sink& sink() const noexcept;

 private:
  friend class World;
  Comm(World& world, int ctx, std::vector<int> granks);

  struct AnyState {
    explicit AnyState(sim::Engine& eng) : cv(eng) {}
    sim::Condition cv;
  };

  static sim::Task<void> run_and_signal(sim::Task<void> op,
                                        std::shared_ptr<Request::State> st);
  static sim::Task<void> notify_when_done(std::shared_ptr<Request::State> st,
                                          std::shared_ptr<AnyState> any);

  int wire_tag(int tag) const;

  World* world_;
  int ctx_;
  std::vector<int> granks_;           // comm-local -> global
  std::vector<int> from_global_;      // global -> comm-local (-1)
  std::vector<std::uint64_t> op_seq_; // per comm-local rank
  std::unique_ptr<sim::Barrier> barrier_;
};

/// Owns the simulated machine and the communicator registry.
class World {
 public:
  /// Primary constructor: all instrumentation (spans + metrics) flows into
  /// `sink`, which must outlive the World. Defaults to the null sink.
  World(sim::Engine& eng, hw::ClusterSpec spec,
        obs::Sink& sink = obs::null_sink());
  /// Compatibility constructor for tracer-based tools: spans land in
  /// `tracer` and metrics in an internally owned registry (see metrics()).
  /// nullptr behaves exactly like the null sink.
  World(sim::Engine& eng, hw::ClusterSpec spec, trace::Tracer* tracer);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  hw::Cluster& cluster() noexcept { return cluster_; }
  net::Net& net() noexcept { return net_; }
  shm::NodeShare& share() noexcept { return share_; }
  sim::Engine& engine() noexcept { return *eng_; }
  obs::Sink& sink() noexcept { return *sink_; }
  /// The tracer passed to the compatibility constructor, else nullptr.
  trace::Tracer* tracer() noexcept { return tracer_; }
  /// The owned metrics registry of the compatibility constructor, else
  /// nullptr (the external sink decides where metrics go).
  obs::Metrics* metrics() noexcept {
    return compat_sink_ ? compat_sink_->metrics() : nullptr;
  }

  Comm& comm_world() noexcept { return *comms_.front(); }

  /// Create a sub-communicator from global ranks (kept alive by the World).
  Comm& create_comm(std::vector<int> global_ranks);

  /// Convenience: the node-local communicator for `node` and the leader
  /// communicator (local rank 0 of every node). Created on demand, cached.
  Comm& node_comm(int node);
  Comm& leader_comm();

  /// Leaders of `groups` process groups per node (multi-leader designs):
  /// local ranks {0, ppn/groups, 2*ppn/groups, ...} of every node, ordered
  /// node-major then group-major. Created on demand, cached per `groups`.
  Comm& group_leader_comm(int groups);

  /// The ranks of one NUMA socket of one node (3-level designs). Spans
  /// follow the balanced block distribution of hw::Cluster, so uneven
  /// `ppn % sockets` shapes get contiguous spans whose sizes differ by at
  /// most one. Created on demand, cached.
  Comm& socket_comm(int node, int socket);

  /// A contiguous span of node-local ranks [first_local, first_local +
  /// count) of one node — the level-wise splitting primitive of the
  /// n-level hierarchy builder (core/hierarchy.hpp): every hierarchy group
  /// below the node level is such a span. Created on demand, cached per
  /// (node, first, count).
  Comm& span_comm(int node, int first_local, int count);

 private:
  void init();

  sim::Engine* eng_;
  hw::Cluster cluster_;
  trace::Tracer* tracer_ = nullptr;
  obs::Metrics compat_metrics_;
  std::unique_ptr<obs::CollectSink> compat_sink_;
  obs::Sink* sink_;
  net::Net net_;
  shm::NodeShare share_;
  std::deque<std::unique_ptr<Comm>> comms_;
  std::vector<Comm*> node_comms_;
  Comm* leader_comm_ = nullptr;
  std::map<int, Comm*> group_leader_comms_;
  std::map<std::pair<int, int>, Comm*> socket_comms_;
  std::map<std::tuple<int, int, int>, Comm*> span_comms_;
  int next_ctx_ = 0;
};

}  // namespace hmca::mpi
