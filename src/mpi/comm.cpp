#include "mpi/comm.hpp"

#include <stdexcept>
#include <utility>

namespace hmca::mpi {

Comm::Comm(World& world, int ctx, std::vector<int> granks)
    : world_(&world), ctx_(ctx), granks_(std::move(granks)) {
  if (granks_.empty()) throw std::invalid_argument("Comm: empty rank list");
  from_global_.assign(world.cluster().world_size(), -1);
  for (std::size_t i = 0; i < granks_.size(); ++i) {
    const int g = granks_[i];
    if (g < 0 || g >= world.cluster().world_size()) {
      throw std::invalid_argument("Comm: rank out of range");
    }
    if (from_global_[static_cast<std::size_t>(g)] != -1) {
      throw std::invalid_argument("Comm: duplicate rank");
    }
    from_global_[static_cast<std::size_t>(g)] = static_cast<int>(i);
  }
  op_seq_.assign(granks_.size(), 0);
  barrier_ = std::make_unique<sim::Barrier>(world.engine(),
                                            static_cast<int>(granks_.size()));
}

int Comm::from_global(int g) const {
  if (g < 0 || g >= static_cast<int>(from_global_.size())) return -1;
  return from_global_[static_cast<std::size_t>(g)];
}

int Comm::node_of(int r) const { return cluster().node_of(to_global(r)); }
int Comm::node_local_rank(int r) const {
  return cluster().local_rank(to_global(r));
}

hw::Cluster& Comm::cluster() const noexcept { return world_->cluster(); }
net::Net& Comm::net() const noexcept { return world_->net(); }
shm::NodeShare& Comm::share() const noexcept { return world_->share(); }
sim::Engine& Comm::engine() const noexcept { return world_->engine(); }
obs::Sink& Comm::sink() const noexcept { return world_->sink(); }

int Comm::wire_tag(int tag) const {
  if (tag == kAnyTag) return kAnyTag;
  if (tag < 0 || tag > kMaxUserTag) {
    throw std::invalid_argument("Comm: tag out of range");
  }
  return (ctx_ << 16) | tag;
}

sim::Task<void> Comm::send(int my, int dst, int tag, hw::BufView data) {
  co_await net().send(to_global(my), to_global(dst), wire_tag(tag), data);
}

sim::Task<void> Comm::recv(int my, int src, int tag, hw::BufView out) {
  const int gsrc = (src == kAnySource) ? kAnySource : to_global(src);
  co_await net().recv(to_global(my), gsrc, wire_tag(tag), out);
}

sim::Task<void> Comm::run_and_signal(sim::Task<void> op,
                                     std::shared_ptr<Request::State> st) {
  co_await std::move(op);
  st->done = true;
  st->cv.notify_all();
  auto callbacks = std::move(st->callbacks);
  st->callbacks.clear();
  for (auto& fn : callbacks) fn();
}

Request Comm::isend(int my, int dst, int tag, hw::BufView data) {
  Request r;
  r.st_ = std::make_shared<Request::State>(engine());
  engine().spawn(run_and_signal(send(my, dst, tag, data), r.st_));
  return r;
}

Request Comm::irecv(int my, int src, int tag, hw::BufView out) {
  Request r;
  r.st_ = std::make_shared<Request::State>(engine());
  engine().spawn(run_and_signal(recv(my, src, tag, out), r.st_));
  return r;
}

sim::Task<void> Comm::wait(Request r) {
  if (!r.valid()) throw std::invalid_argument("Comm::wait: invalid request");
  // Keep the state alive via the local copy and loop manually; passing an
  // owning capture into the wait_until coroutine parameter trips a GCC 12
  // double-destruction bug in coroutine frames.
  const auto st = r.st_;
  while (!st->done) co_await st->cv.wait();
}

sim::Task<void> Comm::wait_all(std::vector<Request> rs) {
  for (auto& r : rs) co_await wait(r);
}

sim::Task<void> Comm::notify_when_done(std::shared_ptr<Request::State> st,
                                       std::shared_ptr<AnyState> any) {
  while (!st->done) co_await st->cv.wait();
  any->cv.notify_all();
}

sim::Task<std::size_t> Comm::wait_any(std::vector<Request>& rs) {
  bool have_valid = false;
  for (const auto& r : rs) have_valid = have_valid || r.valid();
  if (!have_valid) {
    throw std::invalid_argument("Comm::wait_any: no valid request");
  }
  // One watcher coroutine per pending request funnels completions into a
  // shared condition (named coroutines with shared_ptr parameters — see
  // the GCC 12 note in wait()). Watchers outliving this call is harmless:
  // they hold their state alive and notify an AnyState nobody waits on.
  const auto any = std::make_shared<AnyState>(engine());
  bool spawned = false;
  for (;;) {
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].valid() && rs[i].st_->done) {
        rs[i] = Request{};
        co_return i;
      }
    }
    if (!spawned) {
      for (const auto& r : rs) {
        if (r.valid()) engine().spawn(notify_when_done(r.st_, any));
      }
      spawned = true;
    }
    co_await any->cv.wait();
  }
}

sim::Task<void> Comm::sendrecv(int my, int dst, int stag, hw::BufView sdata,
                               int src, int rtag, hw::BufView rout) {
  Request rr = irecv(my, src, rtag, rout);
  co_await send(my, dst, stag, sdata);
  co_await wait(std::move(rr));
}

sim::Task<void> Comm::barrier(int my) {
  (void)my;
  co_await barrier_->arrive_and_wait();
}

World::World(sim::Engine& eng, hw::ClusterSpec spec, obs::Sink& sink)
    : eng_(&eng), cluster_(eng, spec), sink_(&sink), net_(cluster_, sink) {
  init();
}

World::World(sim::Engine& eng, hw::ClusterSpec spec, trace::Tracer* tracer)
    : eng_(&eng),
      cluster_(eng, spec),
      tracer_(tracer),
      compat_sink_(tracer != nullptr ? std::make_unique<obs::CollectSink>(
                                           tracer, &compat_metrics_)
                                     : nullptr),
      sink_(compat_sink_ != nullptr
                ? static_cast<obs::Sink*>(compat_sink_.get())
                : &obs::null_sink()),
      net_(cluster_, *sink_) {
  init();
}

void World::init() {
  // Fault events become zero-length kPhase spans on the affected node's
  // first rank (rank 0 for whole-cluster events), so degraded runs are
  // diagnosable from the ordinary trace; the metric channel additionally
  // counts transitions and tracks the shrinking healthy-rail floor.
  cluster_.set_fault_listener([this](const sim::FaultEvent& e) {
    const sim::Time now = eng_->now();
    sink_->record(trace::Span{
        cluster_.global_rank(e.node < 0 ? 0 : e.node, 0),
        trace::Kind::kPhase, now, now, /*peer=*/-1, /*bytes=*/0,
        "fault:" + e.describe()});
    if (sink_->wants_metrics()) {
      const char* name = e.kind == sim::FaultKind::kKill
                             ? "cluster.rail.kill"
                             : "cluster.rail.degrade";
      sink_->count(name, 1,
                   {{"node", e.node < 0 ? "*" : std::to_string(e.node)},
                    {"rail", e.hca < 0 ? "*" : std::to_string(e.hca)}});
      sink_->gauge("cluster.min_alive_rails", cluster_.min_alive_rails());
      // Stamped at the first transition and left alone after: the virtual
      // time since which the cluster has not been fully healthy.
      if (cluster_.degraded_count() == 1) {
        sink_->gauge("cluster.degraded_since_us", sim::to_us(now));
      }
    }
    if (sink_->wants_timeline()) {
      // Point samples of the affected rails' bandwidth factor (0 = dead),
      // so a degraded-run timeline shows exactly when each rail went
      // quiet. Wildcard events fan out to every matching rail.
      const int n0 = e.node < 0 ? 0 : e.node;
      const int n1 = e.node < 0 ? cluster_.nodes() : e.node + 1;
      const int h0 = e.hca < 0 ? 0 : e.hca;
      const int h1 = e.hca < 0 ? cluster_.hcas() : e.hca + 1;
      for (int n = n0; n < n1; ++n) {
        for (int h = h0; h < h1; ++h) {
          sink_->sample({"net.rail.health",
                         {{"node", std::to_string(n)},
                          {"rail", std::to_string(h)}},
                         now, now,
                         cluster_.rail_alive(n, h)
                             ? cluster_.rail_bw_factor(n, h)
                             : 0.0});
        }
      }
    }
  });
  if (sink_->wants_timeline()) {
    // Active-flow count of the fluid network as a step series ("sim.flows"
    // point samples hold until the next one).
    cluster_.net().set_flow_observer([this](sim::Time t, int flows) {
      sink_->sample(
          {"sim.flows", {}, t, t, static_cast<double>(flows)});
    });
  }
  std::vector<int> all(static_cast<std::size_t>(cluster_.world_size()));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  comms_.push_back(
      std::unique_ptr<Comm>(new Comm(*this, next_ctx_++, std::move(all))));
  node_comms_.assign(static_cast<std::size_t>(cluster_.nodes()), nullptr);
}

Comm& World::create_comm(std::vector<int> global_ranks) {
  comms_.push_back(std::unique_ptr<Comm>(
      new Comm(*this, next_ctx_++, std::move(global_ranks))));
  return *comms_.back();
}

Comm& World::node_comm(int node) {
  auto& slot = node_comms_.at(static_cast<std::size_t>(node));
  if (slot == nullptr) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(cluster_.ppn()));
    for (int l = 0; l < cluster_.ppn(); ++l) {
      ranks.push_back(cluster_.global_rank(node, l));
    }
    slot = &create_comm(std::move(ranks));
  }
  return *slot;
}

Comm& World::leader_comm() {
  if (leader_comm_ == nullptr) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(cluster_.nodes()));
    for (int n = 0; n < cluster_.nodes(); ++n) {
      ranks.push_back(cluster_.global_rank(n, 0));
    }
    leader_comm_ = &create_comm(std::move(ranks));
  }
  return *leader_comm_;
}

Comm& World::group_leader_comm(int groups) {
  if (groups < 1 || cluster_.ppn() % groups != 0) {
    throw std::invalid_argument(
        "group_leader_comm: ppn must be divisible by groups");
  }
  auto it = group_leader_comms_.find(groups);
  if (it == group_leader_comms_.end()) {
    const int gs = cluster_.ppn() / groups;
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(cluster_.nodes() * groups));
    for (int n = 0; n < cluster_.nodes(); ++n) {
      for (int g = 0; g < groups; ++g) {
        ranks.push_back(cluster_.global_rank(n, g * gs));
      }
    }
    it = group_leader_comms_.emplace(groups, &create_comm(std::move(ranks)))
             .first;
  }
  return *it->second;
}

Comm& World::socket_comm(int node, int socket) {
  const auto key = std::make_pair(node, socket);
  auto it = socket_comms_.find(key);
  if (it == socket_comms_.end()) {
    const int sockets = cluster_.spec().sockets_per_node;
    if (socket < 0 || socket >= sockets) {
      throw std::invalid_argument("socket_comm: bad socket");
    }
    // The balanced block spans of hw::Cluster (exact for ppn % sockets != 0
    // too, where span sizes differ by one).
    const int first = cluster_.socket_first_local(socket);
    const int count = cluster_.socket_size(socket);
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(count));
    for (int l = first; l < first + count; ++l) {
      ranks.push_back(cluster_.global_rank(node, l));
    }
    it = socket_comms_.emplace(key, &create_comm(std::move(ranks))).first;
  }
  return *it->second;
}

Comm& World::span_comm(int node, int first_local, int count) {
  if (node < 0 || node >= cluster_.nodes() || first_local < 0 || count < 1 ||
      first_local + count > cluster_.ppn()) {
    throw std::invalid_argument("span_comm: bad node-local span");
  }
  const auto key = std::make_tuple(node, first_local, count);
  auto it = span_comms_.find(key);
  if (it == span_comms_.end()) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(count));
    for (int l = first_local; l < first_local + count; ++l) {
      ranks.push_back(cluster_.global_rank(node, l));
    }
    it = span_comms_.emplace(key, &create_comm(std::move(ranks))).first;
  }
  return *it->second;
}

}  // namespace hmca::mpi
