// Datatypes and reduction operators for the mini-MPI layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "hw/buffer.hpp"

namespace hmca::mpi {

enum class Dtype { kByte, kInt32, kInt64, kFloat, kDouble };

constexpr std::size_t dtype_size(Dtype d) {
  switch (d) {
    case Dtype::kByte: return 1;
    case Dtype::kInt32: return 4;
    case Dtype::kInt64: return 8;
    case Dtype::kFloat: return 4;
    case Dtype::kDouble: return 8;
  }
  return 1;
}

const char* dtype_name(Dtype d);

enum class ReduceOp { kSum, kProd, kMax, kMin };

const char* reduce_op_name(ReduceOp op);

/// accum[i] = accum[i] OP operand[i] for `count` elements. Both views real:
/// the arithmetic is performed; either phantom: no-op (timing handled by the
/// caller's reduce flow). Byte type supports no arithmetic reductions.
void apply_reduce(ReduceOp op, Dtype dtype, hw::BufView accum,
                  hw::BufView operand, std::size_t count);

}  // namespace hmca::mpi
