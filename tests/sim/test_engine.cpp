// Unit tests for the discrete-event engine and coroutine task plumbing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace hmca::sim {
namespace {

Task<void> note_at(Engine& eng, std::vector<std::pair<double, int>>& log,
                   Duration delay, int id) {
  co_await eng.sleep(delay);
  log.emplace_back(eng.now(), id);
}

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  eng.spawn(note_at(eng, log, 1.5, 1));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 1.5);
  EXPECT_DOUBLE_EQ(eng.now(), 1.5);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  eng.spawn(note_at(eng, log, 3.0, 3));
  eng.spawn(note_at(eng, log, 1.0, 1));
  eng.spawn(note_at(eng, log, 2.0, 2));
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].second, 1);
  EXPECT_EQ(log[1].second, 2);
  EXPECT_EQ(log[2].second, 3);
}

TEST(Engine, EqualTimestampsFireInSpawnOrder) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  for (int i = 0; i < 8; ++i) eng.spawn(note_at(eng, log, 1.0, i));
  eng.run();
  ASSERT_EQ(log.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(log[static_cast<size_t>(i)].second, i);
}

TEST(Engine, NegativeSleepThrows) {
  Engine eng;
  auto bad = [](Engine& e) -> Task<void> { co_await e.sleep(-1.0); };
  eng.spawn(bad(eng));
  EXPECT_THROW(eng.run(), SimError);
}

TEST(Engine, ZeroSleepYields) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  auto yielding = [](Engine& e, std::vector<std::pair<double, int>>& l)
      -> Task<void> {
    co_await e.yield();
    l.emplace_back(e.now(), 42);
  };
  eng.spawn(yielding(eng, log));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 0.0);
}

Task<int> add_later(Engine& eng, int a, int b) {
  co_await eng.sleep(0.25);
  co_return a + b;
}

Task<void> chain(Engine& eng, int& out) {
  const int x = co_await add_later(eng, 1, 2);
  const int y = co_await add_later(eng, x, 10);
  out = y;
}

TEST(Engine, TaskValuesChainAcrossAwaits) {
  Engine eng;
  int out = 0;
  eng.spawn(chain(eng, out));
  eng.run();
  EXPECT_EQ(out, 13);
  EXPECT_DOUBLE_EQ(eng.now(), 0.5);
}

TEST(Engine, ExceptionInRootTaskPropagatesFromRun) {
  Engine eng;
  auto boom = [](Engine& e) -> Task<void> {
    co_await e.sleep(0.1);
    throw std::runtime_error("boom");
  };
  eng.spawn(boom(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ExceptionInChildTaskReachesParent) {
  Engine eng;
  auto child = [](Engine& e) -> Task<void> {
    co_await e.sleep(0.1);
    throw std::logic_error("child failed");
  };
  std::string caught;
  auto parent = [&caught, &child](Engine& e) -> Task<void> {
    try {
      co_await child(e);
    } catch (const std::logic_error& ex) {
      caught = ex.what();
    }
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_EQ(caught, "child failed");
}

TEST(Engine, CallbacksInterleaveWithCoroutines) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_callback([&] { order.push_back(2); }, 2.0);
  std::vector<std::pair<double, int>> log;
  eng.spawn(note_at(eng, log, 1.0, 1));
  eng.schedule_callback([&] { order.push_back(3); }, 3.0);
  eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 3);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, CountsDispatchedEvents) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  eng.spawn(note_at(eng, log, 1.0, 1));
  eng.run();
  EXPECT_GE(eng.events_dispatched(), 2u);  // spawn start + sleep wake
}

TEST(Engine, AliveTasksTracksCompletion) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  eng.spawn(note_at(eng, log, 1.0, 1));
  EXPECT_EQ(eng.alive_tasks(), 1);  // registered at spawn
  eng.run();
  EXPECT_EQ(eng.alive_tasks(), 0);
}

TEST(Engine, WatchdogTripsOnRunawaySimulations) {
  Engine eng;
  auto forever = [](Engine& e) -> Task<void> {
    for (;;) co_await e.sleep(1.0);
  };
  eng.spawn(forever(eng));
  EXPECT_THROW(eng.run(100), SimError);
  // The engine is still usable for inspection after the trip.
  EXPECT_GE(eng.events_dispatched(), 100u);
}

TEST(Engine, WatchdogAllowsNormalCompletion) {
  Engine eng;
  std::vector<std::pair<double, int>> log;
  eng.spawn(note_at(eng, log, 1.0, 1));
  EXPECT_NO_THROW(eng.run(1000));
  EXPECT_EQ(log.size(), 1u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng;
    std::vector<std::pair<double, int>> log;
    for (int i = 0; i < 16; ++i) {
      eng.spawn(note_at(eng, log, 0.1 * ((i * 7) % 5 + 1), i));
    }
    eng.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, EqualTimestampCallbacksFireInScheduleOrder) {
  // The FIFO tie-break contract documented on Engine::schedule: events at
  // one timestamp fire in exactly the order they were scheduled, however
  // many there are.
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    eng.schedule_callback([&order, i] { order.push_back(i); }, 1.0);
  }
  eng.run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EqualTimestampOrderSurvivesInterleavedTimes) {
  // Tagged callbacks at mixed timestamps: within each timestamp, schedule
  // order; across timestamps, time order — regardless of schedule order.
  Engine eng;
  std::vector<std::pair<double, int>> order;
  const double times[] = {2.0, 1.0, 2.0, 1.0, 3.0, 1.0, 2.0};
  for (int i = 0; i < 7; ++i) {
    eng.schedule_callback([&order, t = times[i], i] {
      order.emplace_back(t, i);
    }, times[i]);
  }
  eng.run();
  const std::vector<std::pair<double, int>> want = {
      {1.0, 1}, {1.0, 3}, {1.0, 5}, {2.0, 0}, {2.0, 2}, {2.0, 6}, {3.0, 4}};
  EXPECT_EQ(order, want);
}

TEST(Engine, CancelPreventsCallbackAndReportsStaleness) {
  Engine eng;
  int fired = 0;
  const EventId id = eng.schedule_callback([&fired] { ++fired; }, 1.0);
  eng.schedule_callback([] {}, 2.0);  // keep the queue non-empty
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id)) << "second cancel must report stale";
  eng.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(eng.cancel(id)) << "cancel after run must report stale";
}

TEST(Engine, CancelOfFiredEventIsRejected) {
  Engine eng;
  int fired = 0;
  const EventId id = eng.schedule_callback([&fired] { ++fired; }, 1.0);
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(eng.cancel(id));
}

}  // namespace
}  // namespace hmca::sim
