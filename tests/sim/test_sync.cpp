// Unit tests for coroutine synchronization primitives.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace hmca::sim {
namespace {

TEST(Condition, NotifyAllWakesEveryWaiter) {
  Engine eng;
  Condition cv(eng);
  int woken = 0;
  auto waiter = [&](Engine&) -> Task<void> {
    co_await cv.wait();
    ++woken;
  };
  for (int i = 0; i < 4; ++i) eng.spawn(waiter(eng));
  auto notifier = [&](Engine& e) -> Task<void> {
    co_await e.sleep(1.0);
    cv.notify_all();
  };
  eng.spawn(notifier(eng));
  eng.run();
  EXPECT_EQ(woken, 4);
}

TEST(Condition, NotifyOneWakesInFifoOrder) {
  Engine eng;
  Condition cv(eng);
  std::vector<int> order;
  auto waiter = [&](Engine&, int id) -> Task<void> {
    co_await cv.wait();
    order.push_back(id);
  };
  eng.spawn(waiter(eng, 0));
  eng.spawn(waiter(eng, 1));
  auto notifier = [&](Engine& e) -> Task<void> {
    co_await e.sleep(1.0);
    cv.notify_one();
    co_await e.sleep(1.0);
    cv.notify_one();
  };
  eng.spawn(notifier(eng));
  eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(Condition, WaitUntilRechecksPredicate) {
  Engine eng;
  Condition cv(eng);
  int value = 0;
  double woke_at = -1;
  auto waiter = [&](Engine& e) -> Task<void> {
    co_await cv.wait_until([&] { return value >= 3; });
    woke_at = e.now();
  };
  auto producer = [&](Engine& e) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.sleep(1.0);
      ++value;
      cv.notify_all();
    }
  };
  eng.spawn(waiter(eng));
  eng.spawn(producer(eng));
  eng.run();
  EXPECT_DOUBLE_EQ(woke_at, 3.0);
}

TEST(Condition, DeadlockIsDetected) {
  Engine eng;
  Condition cv(eng);
  auto stuck = [&](Engine&) -> Task<void> { co_await cv.wait(); };
  eng.spawn(stuck(eng));
  EXPECT_THROW(eng.run(), SimError);
}

TEST(Semaphore, SerializesCriticalSection) {
  Engine eng;
  Semaphore sem(eng, 1);
  int inside = 0, max_inside = 0;
  auto worker = [&](Engine& e) -> Task<void> {
    co_await sem.acquire();
    ++inside;
    max_inside = std::max(max_inside, inside);
    co_await e.sleep(1.0);
    --inside;
    sem.release();
  };
  for (int i = 0; i < 3; ++i) eng.spawn(worker(eng));
  eng.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);  // fully serialized
}

TEST(Semaphore, AllowsConcurrencyUpToCount) {
  Engine eng;
  Semaphore sem(eng, 2);
  auto worker = [&](Engine& e) -> Task<void> {
    co_await sem.acquire();
    co_await e.sleep(1.0);
    sem.release();
  };
  for (int i = 0; i < 4; ++i) eng.spawn(worker(eng));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);  // two batches of two
}

TEST(Semaphore, BulkAcquire) {
  Engine eng;
  Semaphore sem(eng, 0);
  bool got = false;
  auto taker = [&](Engine&) -> Task<void> {
    co_await sem.acquire(3);
    got = true;
  };
  auto giver = [&](Engine& e) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.sleep(1.0);
      sem.release();
    }
  };
  eng.spawn(taker(eng));
  eng.spawn(giver(eng));
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Barrier, AlignsAllParties) {
  Engine eng;
  Barrier bar(eng, 3);
  std::vector<double> release_times;
  auto party = [&](Engine& e, double arrive) -> Task<void> {
    co_await e.sleep(arrive);
    co_await bar.arrive_and_wait();
    release_times.push_back(e.now());
  };
  eng.spawn(party(eng, 1.0));
  eng.spawn(party(eng, 2.0));
  eng.spawn(party(eng, 5.0));
  eng.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (double t : release_times) EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Barrier, IsCyclic) {
  Engine eng;
  Barrier bar(eng, 2);
  int rounds_done = 0;
  auto party = [&](Engine& e, double step) -> Task<void> {
    for (int round = 0; round < 3; ++round) {
      co_await e.sleep(step);
      co_await bar.arrive_and_wait();
    }
    ++rounds_done;
  };
  eng.spawn(party(eng, 1.0));
  eng.spawn(party(eng, 2.0));
  eng.run();
  EXPECT_EQ(rounds_done, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);  // slowest party dominates each round
}

TEST(Mailbox, DeliversInFifoOrder) {
  Engine eng;
  Mailbox<int> box(eng);
  std::vector<int> got;
  auto consumer = [&](Engine&) -> Task<void> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await box.get());
  };
  auto producer = [&](Engine& e) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.sleep(1.0);
      box.put(i);
    }
  };
  eng.spawn(consumer(eng));
  eng.spawn(producer(eng));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(WaitGroup, WaitsForAllChildren) {
  Engine eng;
  WaitGroup wg(eng);
  int done = 0;
  auto child = [&](Engine& e, double d) -> Task<void> {
    co_await e.sleep(d);
    ++done;
  };
  double finished_at = -1;
  auto parent = [&](Engine& e) -> Task<void> {
    wg.spawn(child(e, 1.0));
    wg.spawn(child(e, 3.0));
    wg.spawn(child(e, 2.0));
    co_await wg.wait();
    finished_at = e.now();
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(finished_at, 3.0);
}

TEST(WaitGroup, ChildrenRunConcurrently) {
  Engine eng;
  WaitGroup wg(eng);
  auto child = [](Engine& e) -> Task<void> { co_await e.sleep(5.0); };
  auto parent = [&](Engine& e) -> Task<void> {
    for (int i = 0; i < 10; ++i) wg.spawn(child(e));
    co_await wg.wait();
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);  // concurrent, not 50.0
}

}  // namespace
}  // namespace hmca::sim
