// sim/fault.hpp: plan parsing (DSL + JSON), canonical rendering round-trip,
// topology validation, randomized-plan invariants and backoff bounds.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/fault.hpp"
#include "sim/rng.hpp"

namespace hmca::sim {
namespace {

TEST(FaultPlan, ParsesKillEntry) {
  const auto plan = FaultPlan::parse("kill:node=0,hca=1,t=5e-6");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kKill);
  EXPECT_EQ(plan.events[0].node, 0);
  EXPECT_EQ(plan.events[0].hca, 1);
  EXPECT_DOUBLE_EQ(plan.events[0].t, 5e-6);
  EXPECT_FALSE(plan.transient.has_value());
}

TEST(FaultPlan, ParsesDegradeWithWildcards) {
  const auto plan = FaultPlan::parse("degrade:node=*,hca=*,t=0,bw=0.5,lat=2");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kDegrade);
  EXPECT_EQ(plan.events[0].node, -1);
  EXPECT_EQ(plan.events[0].hca, -1);
  EXPECT_DOUBLE_EQ(plan.events[0].bw_factor, 0.5);
  EXPECT_DOUBLE_EQ(plan.events[0].lat_factor, 2.0);
}

TEST(FaultPlan, ParsesTransientSpec) {
  const auto plan = FaultPlan::parse(
      "flaky:rate=0.05,burst=2,seed=7,backoff=2e-6,backoff_max=64e-6");
  ASSERT_TRUE(plan.transient.has_value());
  EXPECT_DOUBLE_EQ(plan.transient->rate, 0.05);
  EXPECT_EQ(plan.transient->max_consecutive, 2);
  EXPECT_EQ(plan.transient->seed, 7u);
}

TEST(FaultPlan, ParsesMultiEntrySpec) {
  const auto plan = FaultPlan::parse(
      "kill:node=0,hca=1,t=5e-6;degrade:node=1,hca=0,t=0,bw=0.25;"
      "flaky:rate=0.1");
  EXPECT_EQ(plan.events.size(), 2u);
  EXPECT_TRUE(plan.transient.has_value());
}

TEST(FaultPlan, ParsesJsonForm) {
  const auto plan = FaultPlan::parse(
      R"([{"kind":"kill","node":0,"hca":1,"t":5e-6},)"
      R"({"kind":"degrade","node":1,"hca":0,"t":0,"bw":0.5,"lat":3},)"
      R"({"kind":"flaky","rate":0.1,"burst":2}])");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kKill);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(plan.events[1].lat_factor, 3.0);
  ASSERT_TRUE(plan.transient.has_value());
  EXPECT_EQ(plan.transient->max_consecutive, 2);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  \n ").empty());
}

TEST(FaultPlan, ToStringRoundTrips) {
  const char* specs[] = {
      "kill:node=0,hca=1,t=5e-6",
      "degrade:node=*,hca=0,t=0,bw=0.5,lat=2",
      "kill:node=2,hca=*,t=1e-5;flaky:rate=0.1,burst=3,seed=9",
  };
  for (const char* s : specs) {
    const auto plan = FaultPlan::parse(s);
    const auto again = FaultPlan::parse(plan.to_string());
    EXPECT_EQ(again.to_string(), plan.to_string()) << s;
    EXPECT_EQ(again.events.size(), plan.events.size()) << s;
    EXPECT_EQ(again.transient.has_value(), plan.transient.has_value()) << s;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode:node=0"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("kill:node=zero,hca=1,t=0"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("kill:nonsense"), FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("[{\"kind\":\"kill\""), FaultPlanError);
}

TEST(FaultPlan, ValidateChecksTopologyAndFactors) {
  EXPECT_NO_THROW(FaultPlan::parse("kill:node=1,hca=1,t=0").validate(2, 2));
  EXPECT_THROW(FaultPlan::parse("kill:node=2,hca=0,t=0").validate(2, 2),
               FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("kill:node=0,hca=2,t=0").validate(2, 2),
               FaultPlanError);
  EXPECT_THROW(
      FaultPlan::parse("degrade:node=0,hca=0,t=0,bw=0").validate(2, 2),
      FaultPlanError);
  EXPECT_THROW(
      FaultPlan::parse("degrade:node=0,hca=0,t=0,bw=1,lat=0.5").validate(2, 2),
      FaultPlanError);
  EXPECT_THROW(FaultPlan::parse("flaky:rate=1.5").validate(2, 2),
               FaultPlanError);
}

TEST(TransientSpec, BackoffIsBoundedExponential) {
  TransientSpec t;
  t.backoff_base = 2e-6;
  t.backoff_max = 64e-6;
  EXPECT_DOUBLE_EQ(t.backoff(1), 2e-6);
  EXPECT_DOUBLE_EQ(t.backoff(2), 4e-6);
  EXPECT_DOUBLE_EQ(t.backoff(3), 8e-6);
  for (int a = 1; a < 40; ++a) {
    EXPECT_LE(t.backoff(a), 64e-6) << "attempt " << a;
    EXPECT_GE(t.backoff(a), 2e-6) << "attempt " << a;
  }
}

TEST(FaultPlan, RandomKillPlansProtectOneRailPerNode) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 4));
    const int hcas = static_cast<int>(rng.uniform_int(1, 4));
    const auto plan =
        FaultPlan::random(rng, nodes, hcas, FaultPlan::Category::kKill);
    EXPECT_NO_THROW(plan.validate(nodes, hcas));
    for (int n = 0; n < nodes; ++n) {
      std::set<int> dead;
      for (const auto& e : plan.events) {
        if (e.kind != FaultKind::kKill) continue;
        if (e.node != n && e.node != -1) continue;
        if (e.hca == -1) {
          for (int h = 0; h < hcas; ++h) dead.insert(h);
        } else {
          dead.insert(e.hca);
        }
      }
      EXPECT_LT(static_cast<int>(dead.size()), hcas)
          << "node " << n << " lost every rail: " << plan.to_string();
    }
  }
}

TEST(FaultPlan, RandomPlansMatchTheirCategory) {
  Rng rng(99);
  using Cat = FaultPlan::Category;
  EXPECT_TRUE(FaultPlan::random(rng, 2, 2, Cat::kNone).empty());
  const auto kill = FaultPlan::random(rng, 2, 2, Cat::kKill);
  for (const auto& e : kill.events) EXPECT_EQ(e.kind, FaultKind::kKill);
  const auto degrade = FaultPlan::random(rng, 2, 2, Cat::kDegrade);
  EXPECT_FALSE(degrade.events.empty());
  for (const auto& e : degrade.events) {
    EXPECT_EQ(e.kind, FaultKind::kDegrade);
    EXPECT_GT(e.bw_factor, 0.0);
    EXPECT_LE(e.bw_factor, 1.0);
    EXPECT_GE(e.lat_factor, 1.0);
  }
  const auto transient = FaultPlan::random(rng, 2, 2, Cat::kTransient);
  ASSERT_TRUE(transient.transient.has_value());
  EXPECT_GT(transient.transient->rate, 0.0);
  EXPECT_LT(transient.transient->rate, 1.0);
  EXPECT_GE(transient.transient->max_consecutive, 1);
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic) {
  using Cat = FaultPlan::Category;
  Rng a(7), b(7);
  for (const Cat c : {Cat::kKill, Cat::kDegrade, Cat::kTransient, Cat::kMixed}) {
    EXPECT_EQ(FaultPlan::random(a, 3, 2, c).to_string(),
              FaultPlan::random(b, 3, 2, c).to_string());
  }
}

TEST(FaultEvent, DescribeNamesTheFault) {
  const auto plan = FaultPlan::parse("kill:node=0,hca=1,t=5e-6");
  const std::string d = plan.events[0].describe();
  EXPECT_NE(d.find("kill"), std::string::npos);
  EXPECT_NE(d.find("1"), std::string::npos);
}

TEST(FaultPlan, CategoryNames) {
  using Cat = FaultPlan::Category;
  EXPECT_STREQ(FaultPlan::category_name(Cat::kNone), "none");
  EXPECT_STREQ(FaultPlan::category_name(Cat::kKill), "kill");
  EXPECT_STREQ(FaultPlan::category_name(Cat::kDegrade), "degrade");
  EXPECT_STREQ(FaultPlan::category_name(Cat::kTransient), "transient");
  EXPECT_STREQ(FaultPlan::category_name(Cat::kMixed), "mixed");
}

}  // namespace
}  // namespace hmca::sim
