// Property tests for the incremental fluid solver.
//
// The rewritten FluidNetwork recomputes rates incrementally (affected
// connected component only). These tests pin the load-bearing claim: at
// every settle point, the incremental rates match a from-scratch max-min
// water-filling solve — the retained waterfill_reference oracle — within
// 0 ULP, i.e. bit-for-bit, under randomized flow add/remove churn on
// randomized topologies. A conservation check (sum of flow rates never
// exceeds any resource's capacity) rides along at every settle point.
// Seed-replayable: HMCA_SIMCORE_SEED=<seed> ctest -L simcore
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/rng.hpp"

namespace hmca::sim {
namespace {

constexpr const char* kSeedEnv = "HMCA_SIMCORE_SEED";

std::uint64_t suite_seed() {
  const char* v = std::getenv(kSeedEnv);
  if (v == nullptr || *v == '\0') return 0xF1D01ull;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v, &end, 0);
  if (end == v) return 0xF1D01ull;
  return parsed;
}

struct Topology {
  std::vector<double> capacities;
  struct Plan {
    std::vector<ResourceUse> uses;
    double bytes;
    double cap;
    double start;
  };
  std::vector<Plan> plans;
};

/// Random topology + flow schedule. `components` > 1 partitions the
/// resources into disjoint groups and confines every flow to one group, so
/// add/remove churn in one component leaves the others' affected sets
/// untouched — the case where the incremental solver actually skips work.
Topology make_topology(std::uint64_t seed, int components = 1) {
  Rng rng(seed);
  Topology topo;
  const int per_comp = 2 + static_cast<int>(rng.next_below(4));
  const int resources = per_comp * components;
  for (int r = 0; r < resources; ++r) {
    topo.capacities.push_back(
        50.0 + static_cast<double>(rng.next_below(4500)) / 10.0);
  }
  const int flows = 4 + static_cast<int>(rng.next_below(24));
  for (int f = 0; f < flows; ++f) {
    Topology::Plan p;
    const int comp = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(components)));
    const int lo = comp * per_comp;
    if (rng.next_below(10) != 0) {  // 1-in-10 flows are resource-free
      const int uses = 1 + static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(per_comp)));
      for (int u = 0; u < uses; ++u) {
        // Duplicate resource ids are legal (weights accumulate).
        p.uses.push_back(ResourceUse{
            static_cast<ResourceId>(lo + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(per_comp)))),
            0.5 + static_cast<double>(rng.next_below(25)) / 10.0});
      }
    }
    // Resource-free flows need a cap; give others one 30% of the time.
    p.cap = (p.uses.empty() || rng.next_below(10) < 3)
                ? 5.0 + static_cast<double>(rng.next_below(450)) / 10.0
                : kNoRateCap;
    p.bytes = 10.0 + static_cast<double>(rng.next_below(49900)) / 10.0;
    p.start = static_cast<double>(rng.next_below(3000)) / 1000.0;
    topo.plans.push_back(std::move(p));
  }
  return topo;
}

Task<void> run_flow(Engine& eng, FluidNetwork& net, const Topology::Plan& plan,
                    int* done) {
  co_await eng.sleep(plan.start);
  FlowSpec spec;
  spec.uses = plan.uses;
  spec.bytes = plan.bytes;
  spec.rate_cap = plan.cap;
  co_await net.transfer(std::move(spec));
  ++*done;
}

/// Compare the network's settled rates against a from-scratch reference
/// solve of the currently active flows (start order), bit-for-bit.
void check_settle_point(const FluidNetwork& net,
                        const std::vector<double>& capacities,
                        std::uint64_t seed, int* checks) {
  const auto snap = net.snapshot();
  std::vector<ReferenceFlow> ref;
  ref.reserve(snap.size());
  for (const auto& s : snap) {
    ref.push_back(ReferenceFlow{s.spec->uses, s.spec->rate_cap});
  }
  const std::vector<double> want = waterfill_reference(capacities, ref);
  ASSERT_EQ(want.size(), snap.size());
  for (std::size_t f = 0; f < snap.size(); ++f) {
    // EXPECT_EQ on doubles is exact equality: the 0-ULP contract.
    EXPECT_EQ(snap[f].rate, want[f])
        << "flow " << f << " of " << snap.size()
        << " diverged from the reference solve; replay with " << kSeedEnv
        << "=" << seed;
  }
  // Conservation: aggregate weighted rate through each resource must not
  // exceed its capacity (tolerance matches the solver's bottleneck slack).
  std::vector<double> load(capacities.size(), 0.0);
  for (const auto& s : snap) {
    for (const auto& u : s.spec->uses) load[u.resource] += s.rate * u.weight;
  }
  for (std::size_t r = 0; r < capacities.size(); ++r) {
    EXPECT_LE(load[r], capacities[r] * (1.0 + 1e-9))
        << "resource " << r << " oversubscribed; replay with " << kSeedEnv
        << "=" << seed;
  }
  ++*checks;
}

Task<void> monitor(Engine& eng, FluidNetwork& net, const Topology& topo,
                   std::uint64_t seed, const int* done, int* checks) {
  const int total = static_cast<int>(topo.plans.size());
  while (*done < total) {
    // Ticks land between flow-event timestamps (starts are on a 1 ms grid,
    // completions at irregular solver-derived instants), so every check
    // sees settled rates.
    co_await eng.sleep(0.0170001);
    check_settle_point(net, topo.capacities, seed, checks);
  }
}

void run_churn(std::uint64_t seed, int components) {
  const Topology topo = make_topology(seed, components);
  Engine eng;
  FluidNetwork net(eng);
  for (std::size_t r = 0; r < topo.capacities.size(); ++r) {
    net.add_resource("r" + std::to_string(r), topo.capacities[r]);
  }
  int done = 0;
  int checks = 0;
  for (const auto& plan : topo.plans) {
    eng.spawn(run_flow(eng, net, plan, &done));
  }
  eng.spawn(monitor(eng, net, topo, seed, &done, &checks));
  eng.run();
  EXPECT_EQ(done, static_cast<int>(topo.plans.size()));
  EXPECT_GT(checks, 10) << "monitor sampled too few settle points";
}

class FluidIncremental : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidIncremental, MatchesReferenceSolveAtEverySettlePoint) {
  run_churn(suite_seed() + GetParam(), /*components=*/1);
}

TEST_P(FluidIncremental, MatchesReferenceAcrossDisjointComponents) {
  // Multiple disconnected sharing components: churn in one must leave the
  // rest untouched, and the incremental partial recompute must still agree
  // with the global reference solve bit-for-bit.
  run_churn(suite_seed() + GetParam(), /*components=*/3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidIncremental,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(FluidIncremental, RemovalRedistributesWithinComponentOnly) {
  // Two flows on link A, one on link B. When the first A-flow drains, the
  // survivor's rate doubles; B's flow is bit-identical throughout.
  Engine eng;
  FluidNetwork net(eng);
  const auto a = net.add_resource("A", 100.0);
  const auto b = net.add_resource("B", 70.0);
  std::vector<double> b_rates;
  int done = 0;
  auto flow = [&](std::vector<ResourceUse> uses, double bytes) -> Task<void> {
    FlowSpec spec;
    spec.uses = std::move(uses);
    spec.bytes = bytes;
    co_await net.transfer(std::move(spec));
    ++done;
  };
  auto watch_b = [&]() -> Task<void> {
    while (done < 3) {
      co_await eng.sleep(0.1000001);
      for (const auto& s : net.snapshot()) {
        if (!s.spec->uses.empty() && s.spec->uses[0].resource == b) {
          b_rates.push_back(s.rate);
        }
      }
    }
  };
  eng.spawn(flow({{a, 1.0}}, 100.0));   // done at t=2 (50 B/s while shared)
  eng.spawn(flow({{a, 1.0}}, 1000.0));  // 50 B/s then 100 B/s
  eng.spawn(flow({{b, 1.0}}, 7000.0));  // 70 B/s throughout, unaffected
  eng.spawn(watch_b());
  eng.run();
  ASSERT_FALSE(b_rates.empty());
  for (const double r : b_rates) {
    EXPECT_EQ(r, 70.0) << "B-component rate disturbed by A-component churn";
  }
}

}  // namespace
}  // namespace hmca::sim
