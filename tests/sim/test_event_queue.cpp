// Differential test: the production calendar queue against the retained
// binary-heap reference scheduler.
//
// Both queues promise the same contract — events pop in strictly
// lexicographic (t, seq) order with FIFO tie-break at equal timestamps —
// and this suite drives randomized schedule/cancel/re-schedule sequences
// (including bursts of equal timestamps) through both at once, asserting
// identical pop order. Seed-replayable via the conformance-harness env
// convention:
//   HMCA_SIMCORE_SEED=<seed> ctest -L simcore
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace hmca::sim {
namespace {

constexpr const char* kSeedEnv = "HMCA_SIMCORE_SEED";

/// Suite seed: HMCA_SIMCORE_SEED when set (any strtoull base-0 form, so hex
/// seeds from failure logs replay directly), a fixed default otherwise.
std::uint64_t suite_seed() {
  const char* v = std::getenv(kSeedEnv);
  if (v == nullptr || *v == '\0') return 0x51EDC04Eull;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v, &end, 0);
  if (end == v) return 0x51EDC04Eull;
  return parsed;
}

std::string replay_note(std::uint64_t seed) {
  return "replay with " + std::string(kSeedEnv) + "=" + std::to_string(seed);
}

/// Drives an identical operation sequence through both queues and asserts
/// the pops agree. Ids differ between the queues (different arenas), so
/// pushes are tracked as pairs.
class DifferentialDriver {
 public:
  explicit DifferentialDriver(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  void push(QueueTime t) {
    const EventId cal = cal_.push(t, {}, nullptr);
    const EventId ref = ref_.push(t, {}, nullptr);
    live_.push_back({cal, ref});
  }

  /// Cancel a random tracked id (which may already have been popped — the
  /// queues must then both reject it as stale).
  void cancel_random() {
    if (live_.empty()) return;
    const std::size_t i = rng_.next_below(live_.size());
    const bool a = cal_.cancel(live_[i].first);
    const bool b = ref_.cancel(live_[i].second);
    EXPECT_EQ(a, b) << "cancel verdict diverged; " << replay_note(seed_);
    live_[i] = live_.back();
    live_.pop_back();
  }

  void pop_and_compare() {
    ASSERT_EQ(cal_.empty(), ref_.empty()) << replay_note(seed_);
    if (cal_.empty()) return;
    const QueuedEvent a = cal_.pop();
    const QueuedEvent b = ref_.pop();
    ASSERT_EQ(a.t, b.t) << "pop time diverged at op " << pops_ << "; "
                        << replay_note(seed_);
    ASSERT_EQ(a.seq, b.seq) << "pop order diverged at t=" << a.t << "; "
                            << replay_note(seed_);
    ++pops_;
    last_popped_t_ = a.t;
  }

  void drain() {
    ASSERT_EQ(cal_.size(), ref_.size()) << replay_note(seed_);
    while (!cal_.empty()) pop_and_compare();
    EXPECT_TRUE(ref_.empty()) << replay_note(seed_);
  }

  Rng& rng() { return rng_; }
  QueueTime last_popped() const { return last_popped_t_; }
  std::size_t size() const { return cal_.size(); }

 private:
  CalendarQueue cal_;
  BinaryHeapQueue ref_;
  std::vector<std::pair<EventId, EventId>> live_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t pops_ = 0;
  QueueTime last_popped_t_ = 0.0;
};

TEST(EventQueueDifferential, RandomizedScheduleCancelReschedule) {
  // Mixed workload mimicking the engine: mostly monotone pushes around a
  // moving "now", bursts of equal timestamps, occasional cancels, and
  // re-schedule churn (pop followed by pushes at the popped time).
  const std::uint64_t seed = suite_seed();
  for (int round = 0; round < 4; ++round) {
    DifferentialDriver d(seed + static_cast<std::uint64_t>(round));
    auto& rng = d.rng();
    double now = 0.0;
    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t kind = rng.next_below(100);
      if (kind < 55) {
        // Schedule ahead of the current virtual time.
        d.push(now + static_cast<double>(rng.next_below(1000)) * 1e-6);
      } else if (kind < 70) {
        // Equal-timestamp burst: these must pop FIFO.
        const double t = now + static_cast<double>(rng.next_below(100)) * 1e-6;
        const std::uint64_t burst = 2 + rng.next_below(6);
        for (std::uint64_t i = 0; i < burst; ++i) d.push(t);
      } else if (kind < 80) {
        d.cancel_random();
      } else if (d.size() > 0) {
        d.pop_and_compare();
        now = d.last_popped();
        // Re-schedule at the popped timestamp (the engine's schedule_now).
        if (rng.next_below(2) == 0) d.push(now);
      }
      if (HasFatalFailure()) return;
    }
    d.drain();
    if (HasFatalFailure()) return;
  }
}

TEST(EventQueueDifferential, EqualTimestampBurstsPopInPushOrder) {
  CalendarQueue q;
  for (int i = 0; i < 500; ++i) q.push(1.25, {}, nullptr);
  std::uint64_t prev_seq = 0;
  for (int i = 0; i < 500; ++i) {
    const QueuedEvent ev = q.pop();
    EXPECT_DOUBLE_EQ(ev.t, 1.25);
    if (i > 0) {
      EXPECT_GT(ev.seq, prev_seq) << "FIFO tie-break violated";
    }
    prev_seq = ev.seq;
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDifferential, SparseScheduleExercisesDirectSearch) {
  // Huge gaps between timestamps force the pop scan onto its direct-search
  // fallback; order must still match the reference exactly.
  const std::uint64_t seed = suite_seed() ^ 0xA11Cull;
  DifferentialDriver d(seed);
  auto& rng = d.rng();
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 6) {
      // Timestamps spread over ~12 orders of magnitude.
      const double mag = static_cast<double>(rng.next_below(12));
      d.push(static_cast<double>(1 + rng.next_below(999)) *
             std::pow(10.0, mag - 6.0));
    } else if (kind < 7) {
      d.cancel_random();
    } else if (d.size() > 0) {
      d.pop_and_compare();
    }
    if (HasFatalFailure()) return;
  }
  d.drain();
}

TEST(EventQueueDifferential, GrowShrinkCyclesPreserveOrder) {
  // Fill far past the grow threshold, drain to trigger shrink, refill:
  // phase-structured population swings must not disturb pop order.
  const std::uint64_t seed = suite_seed() ^ 0x6405ull;
  DifferentialDriver d(seed);
  auto& rng = d.rng();
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 4000; ++i) {
      d.push(static_cast<double>(cycle) +
             static_cast<double>(rng.next_below(10000)) * 1e-7);
    }
    for (int i = 0; i < 3900; ++i) {
      d.pop_and_compare();
      if (HasFatalFailure()) return;
    }
  }
  d.drain();
}

TEST(EventQueue, CancelIsExactOnceAndStaleAfterPop) {
  CalendarQueue q;
  const EventId a = q.push(1.0, {}, nullptr);
  const EventId b = q.push(2.0, {}, nullptr);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a)) << "double cancel must be rejected";
  EXPECT_EQ(q.size(), 1u);
  const QueuedEvent ev = q.pop();
  EXPECT_DOUBLE_EQ(ev.t, 2.0);
  EXPECT_FALSE(q.cancel(b)) << "cancel of a popped event must be rejected";
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledSlotReuseRejectsStaleId) {
  CalendarQueue q;
  const EventId a = q.push(1.0, {}, nullptr);
  EXPECT_TRUE(q.cancel(a));
  // The arena slot is recycled; the old id's generation is now stale.
  const EventId c = q.push(3.0, {}, nullptr);
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.cancel(c));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackPayloadSurvivesTransit) {
  CalendarQueue q;
  int fired = 0;
  q.push(1.0, {}, [&fired] { ++fired; });
  QueuedEvent ev = q.pop();
  ASSERT_TRUE(ev.fn != nullptr);
  EXPECT_FALSE(static_cast<bool>(ev.h));
  ev.fn();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace hmca::sim
