// Unit tests for the max-min fair fluid-flow network.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/sync.hpp"

namespace hmca::sim {
namespace {

constexpr double kTol = 1e-9;

struct Fixture {
  Engine eng;
  FluidNetwork net{eng};
};

Task<void> flow_task(FluidNetwork& net, FlowSpec spec, double* end_time,
                     Engine& eng) {
  co_await net.transfer(std::move(spec));
  if (end_time) *end_time = eng.now();
}

TEST(Fluid, SingleFlowRunsAtCapacity) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);  // 100 B/s
  double end = -1;
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 500.0, kNoRateCap}, &end,
                        f.eng));
  f.eng.run();
  EXPECT_NEAR(end, 5.0, kTol);
}

TEST(Fluid, TwoFlowsShareFairly) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  double e1 = -1, e2 = -1;
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 500.0, kNoRateCap}, &e1,
                        f.eng));
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 500.0, kNoRateCap}, &e2,
                        f.eng));
  f.eng.run();
  // Both at 50 B/s -> 10 s each.
  EXPECT_NEAR(e1, 10.0, kTol);
  EXPECT_NEAR(e2, 10.0, kTol);
}

TEST(Fluid, RemainingFlowSpeedsUpAfterCompletion) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  double e_small = -1, e_big = -1;
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 100.0, kNoRateCap},
                        &e_small, f.eng));
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 500.0, kNoRateCap}, &e_big,
                        f.eng));
  f.eng.run();
  // Shared until t=2 (small done: 100 B at 50 B/s). Big has 400 B left at
  // full 100 B/s -> finishes at 2 + 4 = 6.
  EXPECT_NEAR(e_small, 2.0, kTol);
  EXPECT_NEAR(e_big, 6.0, kTol);
}

TEST(Fluid, RateCapLimitsSingleFlow) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  double end = -1;
  f.eng.spawn(
      flow_task(f.net, FlowSpec{{{r, 1.0}}, 100.0, 10.0}, &end, f.eng));
  f.eng.run();
  EXPECT_NEAR(end, 10.0, kTol);
}

TEST(Fluid, CappedFlowLeavesBandwidthToOthers) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  double e_capped = -1, e_free = -1;
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 200.0, 20.0}, &e_capped,
                        f.eng));
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 800.0, kNoRateCap},
                        &e_free, f.eng));
  f.eng.run();
  // Capped: 20 B/s -> 10 s. Free flow gets the remaining 80 B/s -> 10 s.
  EXPECT_NEAR(e_capped, 10.0, kTol);
  EXPECT_NEAR(e_free, 10.0, kTol);
}

TEST(Fluid, WeightedFlowConsumesMoreCapacity) {
  Fixture f;
  auto r = f.net.add_resource("mem", 100.0);
  double end = -1;
  // Weight 2 (CPU copy: read + write): payload rate = capacity / 2.
  f.eng.spawn(
      flow_task(f.net, FlowSpec{{{r, 2.0}}, 100.0, kNoRateCap}, &end, f.eng));
  f.eng.run();
  EXPECT_NEAR(end, 2.0, kTol);
}

TEST(Fluid, MultiResourceFlowLimitedByTightest) {
  Fixture f;
  auto a = f.net.add_resource("a", 100.0);
  auto b = f.net.add_resource("b", 30.0);
  double end = -1;
  f.eng.spawn(flow_task(
      f.net, FlowSpec{{{a, 1.0}, {b, 1.0}}, 300.0, kNoRateCap}, &end, f.eng));
  f.eng.run();
  EXPECT_NEAR(end, 10.0, kTol);
}

TEST(Fluid, MaxMinAllocationAcrossTwoLinks) {
  Fixture f;
  // Classic max-min example: flows A (uses r1), B (uses r1+r2), C (uses r2).
  // r1 = 100, r2 = 40. B is bottlenecked on r2 at 20; A then gets 80.
  auto r1 = f.net.add_resource("r1", 100.0);
  auto r2 = f.net.add_resource("r2", 40.0);
  double ea = -1, eb = -1, ec = -1;
  f.eng.spawn(
      flow_task(f.net, FlowSpec{{{r1, 1.0}}, 800.0, kNoRateCap}, &ea, f.eng));
  f.eng.spawn(flow_task(f.net, FlowSpec{{{r1, 1.0}, {r2, 1.0}}, 200.0,
                                        kNoRateCap},
                        &eb, f.eng));
  f.eng.spawn(
      flow_task(f.net, FlowSpec{{{r2, 1.0}}, 200.0, kNoRateCap}, &ec, f.eng));
  f.eng.run();
  // Rates: B and C share r2 -> 20 each; A gets 100 - 20 = 80.
  // B: 200/20 = 10 s. C: 200/20 = 10 s. A: 800/80 = 10 s.
  EXPECT_NEAR(ea, 10.0, kTol);
  EXPECT_NEAR(eb, 10.0, kTol);
  EXPECT_NEAR(ec, 10.0, kTol);
}

TEST(Fluid, ZeroByteFlowCompletesImmediately) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  double end = -1;
  f.eng.spawn(
      flow_task(f.net, FlowSpec{{{r, 1.0}}, 0.0, kNoRateCap}, &end, f.eng));
  f.eng.run();
  EXPECT_NEAR(end, 0.0, kTol);
}

TEST(Fluid, StaggeredArrivalsResliceBandwidth) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  double e1 = -1, e2 = -1;
  auto delayed = [&](Duration d, double bytes, double* end) -> Task<void> {
    co_await f.eng.sleep(d);
    FlowSpec spec;
    spec.uses = {{r, 1.0}};
    spec.bytes = bytes;
    co_await f.net.transfer(std::move(spec));
    *end = f.eng.now();
  };
  f.eng.spawn(delayed(0.0, 600.0, &e1));
  f.eng.spawn(delayed(2.0, 200.0, &e2));
  f.eng.run();
  // Flow1 alone [0,2): 200 B done. Shared at 50 B/s: flow2 finishes 200 B at
  // t = 2 + 4 = 6; flow1 then has 600-200-200 = 200 B at 100 B/s -> t = 8.
  EXPECT_NEAR(e2, 6.0, kTol);
  EXPECT_NEAR(e1, 8.0, kTol);
}

TEST(Fluid, ServedBytesAreAccounted) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  f.eng.spawn(
      flow_task(f.net, FlowSpec{{{r, 2.0}}, 300.0, kNoRateCap}, nullptr,
                f.eng));
  f.eng.run();
  EXPECT_NEAR(f.net.bytes_served(r), 600.0, 1e-6);  // weight 2
}

TEST(Fluid, ManySymmetricFlowsBatchToOneTimestamp) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  const int n = 64;
  std::vector<double> ends(n, -1);
  for (int i = 0; i < n; ++i) {
    f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 100.0, kNoRateCap},
                          &ends[static_cast<size_t>(i)], f.eng));
  }
  f.eng.run();
  for (double e : ends) EXPECT_NEAR(e, 64.0, 1e-6);
}

TEST(Fluid, InvalidSpecsThrow) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  EXPECT_THROW(f.net.transfer(FlowSpec{{{r + 1, 1.0}}, 10.0, kNoRateCap}),
               SimError);
  EXPECT_THROW(f.net.transfer(FlowSpec{{{r, 0.0}}, 10.0, kNoRateCap}),
               SimError);
  EXPECT_THROW(f.net.transfer(FlowSpec{{}, 10.0, kNoRateCap}), SimError);
  EXPECT_THROW(f.net.transfer(FlowSpec{{{r, 1.0}}, 10.0, 0.0}), SimError);
  EXPECT_THROW(f.net.add_resource("bad", 0.0), SimError);
}

TEST(Fluid, PeakFlowsTracksConcurrency) {
  Fixture f;
  auto r = f.net.add_resource("link", 100.0);
  for (int i = 0; i < 5; ++i) {
    f.eng.spawn(flow_task(f.net, FlowSpec{{{r, 1.0}}, 100.0, kNoRateCap},
                          nullptr, f.eng));
  }
  f.eng.run();
  EXPECT_EQ(f.net.peak_flows(), 5);
  EXPECT_EQ(f.net.active_flows(), 0);
}

// Property: total completion time of equal flows over one resource scales
// linearly with the flow count (work conservation).
class FluidWorkConservation : public ::testing::TestWithParam<int> {};

TEST_P(FluidWorkConservation, LinearInFlowCount) {
  const int n = GetParam();
  Engine eng;
  FluidNetwork net(eng);
  auto r = net.add_resource("link", 1000.0);
  for (int i = 0; i < n; ++i) {
    eng.spawn(flow_task(net, FlowSpec{{{r, 1.0}}, 1000.0, kNoRateCap}, nullptr,
                        eng));
  }
  eng.run();
  EXPECT_NEAR(eng.now(), static_cast<double>(n), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, FluidWorkConservation,
                         ::testing::Values(1, 2, 3, 7, 16, 33));

}  // namespace
}  // namespace hmca::sim
