// Property tests for the fluid-flow network: work conservation, cap
// respect, and bit-exact determinism over randomized topologies driven by
// the deterministic RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/rng.hpp"

namespace hmca::sim {
namespace {

struct RandomScenario {
  std::vector<double> capacities;
  struct FlowPlan {
    std::vector<ResourceUse> uses;
    double bytes;
    double cap;
    double start;
  };
  std::vector<FlowPlan> flows;
};

RandomScenario make_scenario(std::uint64_t seed) {
  Rng rng(seed);
  RandomScenario sc;
  const int resources = static_cast<int>(rng.uniform_int(1, 5));
  for (int r = 0; r < resources; ++r) {
    sc.capacities.push_back(rng.uniform(50.0, 500.0));
  }
  const int flows = static_cast<int>(rng.uniform_int(1, 12));
  for (int f = 0; f < flows; ++f) {
    RandomScenario::FlowPlan p;
    const int uses = static_cast<int>(rng.uniform_int(1, resources));
    for (int u = 0; u < uses; ++u) {
      p.uses.push_back(ResourceUse{
          static_cast<ResourceId>(rng.uniform_int(0, resources - 1)),
          rng.uniform(0.5, 3.0)});
    }
    // Duplicate resource ids are legal (weights accumulate).
    p.bytes = rng.uniform(10.0, 5000.0);
    p.cap = rng.next_double() < 0.3 ? rng.uniform(5.0, 50.0) : kNoRateCap;
    p.start = rng.uniform(0.0, 2.0);
    sc.flows.push_back(std::move(p));
  }
  return sc;
}

struct RunResult {
  double total_time;
  std::vector<double> finish;
  std::vector<double> served;
};

Task<void> scenario_flow(Engine& eng, FluidNetwork& net,
                         const RandomScenario::FlowPlan& plan, double* end) {
  co_await eng.sleep(plan.start);
  FlowSpec spec;
  spec.uses = plan.uses;
  spec.bytes = plan.bytes;
  spec.rate_cap = plan.cap;
  co_await net.transfer(std::move(spec));
  *end = eng.now();
}

RunResult run_scenario(const RandomScenario& sc) {
  Engine eng;
  FluidNetwork net(eng);
  for (std::size_t r = 0; r < sc.capacities.size(); ++r) {
    net.add_resource("r" + std::to_string(r), sc.capacities[r]);
  }
  RunResult out;
  out.finish.assign(sc.flows.size(), -1.0);
  for (std::size_t f = 0; f < sc.flows.size(); ++f) {
    eng.spawn(scenario_flow(eng, net, sc.flows[f], &out.finish[f]));
  }
  eng.run();
  out.total_time = eng.now();
  for (std::size_t r = 0; r < sc.capacities.size(); ++r) {
    out.served.push_back(net.bytes_served(static_cast<ResourceId>(r)));
  }
  return out;
}

class FluidRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidRandomized, EveryFlowCompletes) {
  const auto sc = make_scenario(GetParam());
  const auto res = run_scenario(sc);
  for (std::size_t f = 0; f < sc.flows.size(); ++f) {
    EXPECT_GE(res.finish[f], sc.flows[f].start) << "flow " << f;
  }
}

TEST_P(FluidRandomized, ResourceAccountingMatchesDemand) {
  // Sum of payload*weight over flows touching a resource equals the bytes
  // the resource reports having served.
  const auto sc = make_scenario(GetParam());
  const auto res = run_scenario(sc);
  std::vector<double> expect(sc.capacities.size(), 0.0);
  for (const auto& f : sc.flows) {
    for (const auto& u : f.uses) expect[u.resource] += f.bytes * u.weight;
  }
  for (std::size_t r = 0; r < expect.size(); ++r) {
    EXPECT_NEAR(res.served[r], expect[r], 1e-3 + expect[r] * 1e-9) << "r" << r;
  }
}

TEST_P(FluidRandomized, NoFlowBeatsItsOwnCapOrBottleneck) {
  // Completion can never be earlier than bytes / min(cap, tightest
  // single-resource full capacity / weight) after the start time.
  const auto sc = make_scenario(GetParam());
  const auto res = run_scenario(sc);
  for (std::size_t f = 0; f < sc.flows.size(); ++f) {
    const auto& plan = sc.flows[f];
    double best_rate = plan.cap;
    for (const auto& u : plan.uses) {
      best_rate = std::min(best_rate, sc.capacities[u.resource] / u.weight);
    }
    const double min_time = plan.bytes / best_rate;
    EXPECT_GE(res.finish[f] - plan.start, min_time * (1 - 1e-9)) << "flow " << f;
  }
}

TEST_P(FluidRandomized, DeterministicAcrossRuns) {
  const auto sc = make_scenario(GetParam());
  const auto a = run_scenario(sc);
  const auto b = run_scenario(sc);
  EXPECT_EQ(a.total_time, b.total_time);
  for (std::size_t f = 0; f < a.finish.size(); ++f) {
    EXPECT_EQ(a.finish[f], b.finish[f]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidRandomized,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(FluidProperty, WorkConservationUnderChurn) {
  // Staggered arrivals on one link: total time equals total bytes /
  // capacity whenever the link never idles.
  Engine eng;
  FluidNetwork net(eng);
  const auto r = net.add_resource("link", 100.0);
  double total_bytes = 0.0;
  std::vector<double> ends(20, -1.0);
  RandomScenario::FlowPlan plan;
  Rng rng(7);
  std::vector<RandomScenario::FlowPlan> plans;
  for (int i = 0; i < 20; ++i) {
    RandomScenario::FlowPlan p;
    p.uses = {{r, 1.0}};
    p.bytes = rng.uniform(100.0, 400.0);
    p.cap = kNoRateCap;
    p.start = 0.0;  // all at once: no idle gaps by construction
    total_bytes += p.bytes;
    plans.push_back(p);
  }
  for (int i = 0; i < 20; ++i) {
    eng.spawn(scenario_flow(eng, net, plans[static_cast<std::size_t>(i)],
                            &ends[static_cast<std::size_t>(i)]));
  }
  eng.run();
  EXPECT_NEAR(eng.now(), total_bytes / 100.0, 1e-6);
}

}  // namespace
}  // namespace hmca::sim
