// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace hmca::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
    EXPECT_EQ(r.next_below(1), 0u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(11);
  bool seen_lo = false, seen_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen_lo |= (v == -2);
    seen_hi |= (v == 2);
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, RoughlyUniform) {
  Rng r(5);
  std::vector<int> hist(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++hist[r.next_below(8)];
  for (int c : hist) {
    EXPECT_GT(c, n / 8 - n / 80);
    EXPECT_LT(c, n / 8 + n / 80);
  }
}

}  // namespace
}  // namespace hmca::sim
