// Protocol-boundary and stress behaviour of the messaging engine: the
// eager/rendezvous and shm/CMA thresholds, incast, wildcard interleaving,
// and overlap structure of the MHA-inter pipeline (Fig. 6).
#include <gtest/gtest.h>

#include <cstring>

#include "core/hierarchical.hpp"
#include "hw/buffer.hpp"
#include "mpi/comm.hpp"
#include "net/net.hpp"
#include "osu/harness.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace hmca::net {
namespace {

double one_send(hw::ClusterSpec spec, std::size_t n, int src = 0,
                int dst = 1) {
  spec.carry_data = false;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto sbuf = hw::Buffer::phantom(n);
  auto rbuf = hw::Buffer::phantom(n);
  auto s = [&]() -> sim::Task<void> {
    co_await world.net().send(src, dst, 0, sbuf.view());
  };
  auto r = [&]() -> sim::Task<void> {
    co_await world.net().recv(dst, src, 0, rbuf.view());
  };
  eng.spawn(s());
  eng.spawn(r());
  eng.run();
  return eng.now();
}

TEST(Protocols, EagerRendezvousBoundaryIsContinuousEnough) {
  // Crossing the eager threshold changes the protocol; the latency step
  // must stay small (no cliff) and monotonicity must recover immediately.
  auto spec = hw::ClusterSpec::thor(2, 1);
  const auto thr = spec.eager_threshold;
  const double below = one_send(spec, thr);
  const double above = one_send(spec, thr + 1);
  EXPECT_GT(above, 0.0);
  EXPECT_LT(above, 2.5 * below);  // rendezvous adds handshakes, not chaos
  EXPECT_GT(one_send(spec, 4 * thr), above);
}

TEST(Protocols, IntraCopyThresholdSwitchesToSingleCopy) {
  // Above the CMA threshold the payload is copied once instead of twice:
  // the per-byte slope must drop.
  auto spec = hw::ClusterSpec::thor(1, 2);
  const auto thr = spec.intra_single_copy_threshold;
  const double t2a = one_send(spec, thr / 2);
  const double t2b = one_send(spec, thr);         // still double copy
  const double slope2 = (t2b - t2a) / (thr / 2.0);
  const double t1a = one_send(spec, 4 * thr);     // single copy
  const double t1b = one_send(spec, 8 * thr);
  const double slope1 = (t1b - t1a) / (4.0 * thr);
  EXPECT_LT(slope1, 0.7 * slope2);
}

TEST(Protocols, IncastSharesTheReceiverFairly) {
  // 7 senders to one receiver, rendezvous-sized messages: receiver-side
  // rx port serializes the aggregate; no sender starves.
  auto spec = hw::ClusterSpec::thor(8, 1);
  spec.carry_data = false;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& net = world.net();
  const std::size_t n = 1u << 20;
  auto sbuf = hw::Buffer::phantom(n);
  std::vector<hw::Buffer> rbufs;
  for (int i = 0; i < 7; ++i) rbufs.push_back(hw::Buffer::phantom(n));
  std::vector<double> done(7, -1.0);
  auto sender = [&](int r) -> sim::Task<void> {
    co_await net.send(r + 1, 0, r, sbuf.view());
  };
  auto receiver = [&](int r) -> sim::Task<void> {
    co_await net.recv(0, r + 1, r, rbufs[static_cast<std::size_t>(r)].view());
    done[static_cast<std::size_t>(r)] = eng.now();
  };
  for (int r = 0; r < 7; ++r) {
    eng.spawn(sender(r));
    eng.spawn(receiver(r));
  }
  eng.run();
  // Aggregate of 7 MB into a node with 2 rails (25 GB/s): >= 280 us, and
  // every transfer finishes within the total window.
  const double floor_s = 7.0 * n / (2 * spec.hca_bw);
  EXPECT_GE(eng.now(), floor_s * 0.95);
  for (double d : done) {
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, eng.now());
  }
}

TEST(Protocols, WildcardsDrainUnexpectedQueueInArrivalOrder) {
  auto spec = hw::ClusterSpec::thor(1, 4);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& net = world.net();
  std::vector<hw::Buffer> srcs;
  for (int i = 0; i < 3; ++i) {
    auto b = hw::Buffer::data(8);
    std::memset(b.bytes(), '1' + i, 8);
    srcs.push_back(std::move(b));
  }
  std::string order;
  auto sender = [&](int r, double at) -> sim::Task<void> {
    co_await eng.sleep(at);
    co_await net.send(r, 3, 7, srcs[static_cast<std::size_t>(r)].view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await eng.sleep(1.0);  // everything lands unexpected
    for (int i = 0; i < 3; ++i) {
      auto d = hw::Buffer::data(8);
      co_await net.recv(3, kAnySource, kAnyTag, d.view());
      order.push_back(d.as<char>()[0]);
    }
  };
  eng.spawn(sender(0, 0.3));
  eng.spawn(sender(1, 0.1));
  eng.spawn(sender(2, 0.2));
  eng.spawn(receiver());
  eng.run();
  EXPECT_EQ(order, "231");  // arrival order, not rank order
}

TEST(Protocols, Fig6OverlapIsObservableInTheTrace) {
  // The heart of Sec. 3.2: during MHA-inter, a leader's inter-node
  // transfers overlap its members' shm copy-outs.
  trace::Tracer tracer;
  const auto spec = hw::ClusterSpec::thor(4, 4);
  osu::measure_allgather(
      spec,
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) {
        return core::allgather_hierarchical(c, r, s, rv, m, ip,
                                            core::HierOptions{});
      },
      262144, &tracer);
  // Leader of node 0 is rank 0; its members are ranks 1..3.
  double overlap = 0.0;
  for (int member = 1; member < 4; ++member) {
    overlap += tracer.overlap_time(0, trace::Kind::kNicXfer, member,
                                   trace::Kind::kCopyOut);
  }
  EXPECT_GT(overlap, 0.0);
  // And with the overlap disabled, there is none.
  trace::Tracer flat;
  core::HierOptions opts;
  opts.overlap = false;
  osu::measure_allgather(
      spec,
      [opts](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
             bool ip) {
        return core::allgather_hierarchical(c, r, s, rv, m, ip, opts);
      },
      262144, &flat);
  double none = 0.0;
  for (int member = 1; member < 4; ++member) {
    none += flat.overlap_time(0, trace::Kind::kNicXfer, member,
                              trace::Kind::kCopyOut);
  }
  EXPECT_LT(none, overlap * 0.25);
}

}  // namespace
}  // namespace hmca::net
