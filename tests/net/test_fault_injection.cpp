// Rail fault injection at the hw/net layers: dead-rail avoidance and
// rerouting, restriping over healthy rails, degraded bandwidth/latency, and
// transient-drop retry with bounded backoff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hw/buffer.hpp"
#include "hw/cluster.hpp"
#include "net/net.hpp"
#include "obs/sink.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "trace/trace.hpp"

namespace hmca::net {
namespace {

hw::ClusterSpec faulted_spec(int nodes, int ppn, int hcas,
                             const std::string& plan) {
  auto spec = hw::ClusterSpec::multi_rail(nodes, ppn, hcas);
  spec.carry_data = false;
  spec.fault_plan = plan;
  return spec;
}

struct SendStats {
  double time = 0;
  double rail_bytes[2] = {0, 0};  // bytes served by node 0's tx ports
  std::uint64_t retries = 0;
};

// One blocking inter-node send of `n` bytes under `plan`.
SendStats measure_send(const std::string& plan, std::size_t n, int hcas = 2,
                 trace::Tracer* tracer = nullptr) {
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, hcas, plan));
  obs::CollectSink sink(tracer);
  Net net(cl, sink);
  auto src = hw::Buffer::phantom(n);
  auto dst = hw::Buffer::phantom(n);
  auto sender = [&]() -> sim::Task<void> {
    co_await net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await net.recv(1, 0, 0, dst.view());
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  SendStats r;
  r.time = eng.now();
  for (int h = 0; h < std::min(hcas, 2); ++h) {
    r.rail_bytes[h] = cl.net().bytes_served(cl.hca_tx(0, h));
  }
  r.retries = net.retries();
  return r;
}

TEST(FaultInjection, ClusterTracksRailState) {
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, 2,
                                   "kill:node=0,hca=1,t=1e-6;"
                                   "degrade:node=1,hca=0,t=2e-6,bw=0.5,lat=2"));
  EXPECT_TRUE(cl.rail_alive(0, 1));
  EXPECT_FALSE(cl.rails_degraded());
  eng.run();  // fire the armed fault callbacks
  EXPECT_FALSE(cl.rail_alive(0, 1));
  EXPECT_TRUE(cl.rail_alive(0, 0));
  EXPECT_EQ(cl.alive_rail_count(0), 1);
  EXPECT_EQ(cl.alive_rail_count(1), 2);
  EXPECT_EQ(cl.min_alive_rails(), 1);
  EXPECT_TRUE(cl.rails_degraded());
  EXPECT_DOUBLE_EQ(cl.rail_bw_factor(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(cl.rail_lat_factor(1, 0), 2.0);
  EXPECT_EQ(cl.healthy_rails(0), std::vector<int>{0});
}

TEST(FaultInjection, NextRailSkipsDeadRails) {
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, 3, "kill:node=0,hca=1,t=0"));
  eng.run();
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(cl.next_rail(0), 1);
  }
}

TEST(FaultInjection, NextRailThrowsWhenNodeHasNoRail) {
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, 2, "kill:node=0,hca=*,t=0"));
  eng.run();
  EXPECT_EQ(cl.alive_rail_count(0), 0);
  EXPECT_THROW(cl.next_rail(0), sim::SimError);
}

TEST(FaultInjection, FaultListenerSeesEventsInTimeOrder) {
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, 2,
                                   "kill:node=0,hca=1,t=5e-6;"
                                   "degrade:node=0,hca=0,t=1e-6,bw=0.5"));
  std::vector<std::string> seen;
  cl.set_fault_listener(
      [&](const sim::FaultEvent& e) { seen.push_back(e.describe()); });
  eng.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(seen[0].find("degrade"), std::string::npos);
  EXPECT_NE(seen[1].find("kill"), std::string::npos);
}

TEST(FaultInjection, StripedTransferAvoidsDeadRail) {
  // 64 KB is above the stripe threshold: healthy it stripes over both
  // rails; with rail 1 dead from t=0 everything moves on rail 0.
  const SendStats healthy = measure_send("", 65536);
  EXPECT_GT(healthy.rail_bytes[0], 0.0);
  EXPECT_GT(healthy.rail_bytes[1], 0.0);

  const SendStats faulted = measure_send("kill:node=0,hca=1,t=0", 65536);
  EXPECT_GT(faulted.rail_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(faulted.rail_bytes[1], 0.0);
  EXPECT_GT(faulted.time, healthy.time);
}

TEST(FaultInjection, DeadReceiveRailReroutes) {
  // Rail 1 of the *destination* dead: transfers still complete, and the
  // receive side never touches its dead port.
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, 2, "kill:node=1,hca=1,t=0"));
  Net net(cl);
  auto src = hw::Buffer::phantom(65536);
  auto dst = hw::Buffer::phantom(65536);
  auto sender = [&]() -> sim::Task<void> {
    co_await net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await net.recv(1, 0, 0, dst.view());
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  EXPECT_DOUBLE_EQ(cl.net().bytes_served(cl.hca_rx(1, 1)), 0.0);
  EXPECT_GT(cl.net().bytes_served(cl.hca_rx(1, 0)), 0.0);
}

TEST(FaultInjection, DegradedRailSlowsLargeTransfers) {
  // Both rails at bw=0.25 from t=0: a rendezvous transfer takes roughly
  // 4x the wire time of the healthy run.
  const std::size_t n = 4 << 20;
  const SendStats healthy = measure_send("", n);
  const SendStats degraded = measure_send("degrade:node=*,hca=*,t=0,bw=0.25", n);
  EXPECT_GT(degraded.time / healthy.time, 3.0);
  EXPECT_LT(degraded.time / healthy.time, 4.5);
}

TEST(FaultInjection, LatencyFactorSlowsPosts) {
  const SendStats healthy = measure_send("", 1024);
  const SendStats slow = measure_send("degrade:node=*,hca=*,t=0,bw=1,lat=8", 1024);
  EXPECT_GT(slow.time, healthy.time);
}

TEST(FaultInjection, TransientDropsRetryAndComplete) {
  trace::Tracer tracer;
  const SendStats flaky =
      measure_send("flaky:rate=0.6,burst=3,seed=11", 65536, 2, &tracer);
  EXPECT_GT(flaky.retries, 0u);
  const SendStats healthy = measure_send("", 65536);
  EXPECT_GT(flaky.time, healthy.time);  // backoff delays are paid
  bool saw_retry_span = false;
  for (const auto& s : tracer.spans()) {
    if (s.label.rfind("fault:retry", 0) == 0) {
      saw_retry_span = true;
      EXPECT_EQ(s.kind, trace::Kind::kPhase);
    }
  }
  EXPECT_TRUE(saw_retry_span);
}

TEST(FaultInjection, TransientDropsAreBoundedPerPost) {
  // With rate ~1 every post would livelock without the burst bound; the
  // bounded stream must still let every message through.
  const SendStats r = measure_send("flaky:rate=0.99,burst=2,seed=3", 4096);
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.time, 0.0);
}

TEST(FaultInjection, FaultedRunsAreDeterministic) {
  const std::string plan =
      "kill:node=0,hca=1,t=1e-5;degrade:node=1,hca=0,t=0,bw=0.5;"
      "flaky:rate=0.3,burst=2,seed=77";
  const SendStats a = measure_send(plan, 1 << 20);
  const SendStats b = measure_send(plan, 1 << 20);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.rail_bytes[0], b.rail_bytes[0]);
  EXPECT_DOUBLE_EQ(a.rail_bytes[1], b.rail_bytes[1]);
}

TEST(FaultInjection, NetExposesRailHealth) {
  sim::Engine eng;
  hw::Cluster cl(eng, faulted_spec(2, 1, 2, "kill:node=0,hca=0,t=0"));
  Net net(cl);
  eng.run();
  EXPECT_FALSE(net.rail_healthy(0, 0));
  EXPECT_TRUE(net.rail_healthy(0, 1));
  EXPECT_EQ(net.healthy_rail_count(0), 1);
  EXPECT_EQ(net.healthy_rail_count(1), 2);
}

}  // namespace
}  // namespace hmca::net
