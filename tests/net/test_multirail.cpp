// Multi-rail behaviour: round-robin, striping threshold, bandwidth scaling.
// These tests pin down the transport properties behind the paper's Figures
// 1 and 3 (2 HCAs double large-message bandwidth / halve latency).
#include <gtest/gtest.h>

#include "hw/buffer.hpp"
#include "hw/cluster.hpp"
#include "net/net.hpp"
#include "sim/engine.hpp"

namespace hmca::net {
namespace {

// Measure one blocking pt2pt transfer of `n` bytes between two nodes.
double measure_send(hw::ClusterSpec spec, std::size_t n) {
  spec.carry_data = false;
  sim::Engine eng;
  hw::Cluster cl(eng, spec);
  Net net(cl);
  auto src = hw::Buffer::phantom(n);
  auto dst = hw::Buffer::phantom(n);
  auto sender = [&]() -> sim::Task<void> {
    co_await net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await net.recv(1, 0, 0, dst.view());
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  return eng.now();
}

TEST(MultiRail, LargeMessagesGoTwiceAsFastOnTwoRails) {
  auto one = hw::ClusterSpec::multi_rail(2, 1, 1);
  auto two = hw::ClusterSpec::multi_rail(2, 1, 2);
  const std::size_t n = 4 << 20;  // 4 MB
  const double t1 = measure_send(one, n);
  const double t2 = measure_send(two, n);
  EXPECT_GT(t1 / t2, 1.8);
  EXPECT_LT(t1 / t2, 2.05);
}

TEST(MultiRail, SmallMessagesDoNotBenefitFromStriping) {
  auto one = hw::ClusterSpec::multi_rail(2, 1, 1);
  auto two = hw::ClusterSpec::multi_rail(2, 1, 2);
  const std::size_t n = 4096;  // below stripe threshold
  const double t1 = measure_send(one, n);
  const double t2 = measure_send(two, n);
  EXPECT_NEAR(t1, t2, 1e-12);
}

TEST(MultiRail, StripingKicksInAboveThreshold) {
  auto spec = hw::ClusterSpec::multi_rail(2, 1, 2);
  // Just below and well above the 16 KB threshold; both rendezvous-sized.
  const double below = measure_send(spec, 16384);
  const double above = measure_send(spec, 32768);
  // If 32 KB were on one rail it would take ~2x the 16 KB wire time; with
  // striping each rail moves 16 KB so the data time is roughly equal.
  const double wire_16k = 16384.0 / spec.hca_bw;
  EXPECT_LT(above - below, wire_16k);
}

TEST(MultiRail, EightRailsScaleAggregateBandwidth) {
  // ThetaGPU-like node (Sec. 1): 8 adapters.
  auto one = hw::ClusterSpec::multi_rail(2, 1, 1);
  auto eight = hw::ClusterSpec::multi_rail(2, 1, 8);
  // Keep memory out of the way: NIC traffic 8x12.5=100 GB/s < 115 GB/s.
  const std::size_t n = 32 << 20;
  const double t1 = measure_send(one, n);
  const double t8 = measure_send(eight, n);
  EXPECT_GT(t1 / t8, 6.0);
  EXPECT_LT(t1 / t8, 8.2);
}

TEST(MultiRail, RoundRobinBalancesSmallMessages) {
  auto spec = hw::ClusterSpec::multi_rail(2, 1, 2);
  spec.carry_data = false;
  sim::Engine eng;
  hw::Cluster cl(eng, spec);
  Net net(cl);
  auto src = hw::Buffer::phantom(1024);
  auto dst = hw::Buffer::phantom(1024);
  const int k = 8;
  auto sender = [&]() -> sim::Task<void> {
    for (int i = 0; i < k; ++i) co_await net.send(0, 1, i, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    for (int i = 0; i < k; ++i) co_await net.recv(1, 0, i, dst.view());
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  const double rail0 = cl.net().bytes_served(cl.hca_tx(0, 0));
  const double rail1 = cl.net().bytes_served(cl.hca_tx(0, 1));
  EXPECT_NEAR(rail0, rail1, 1.0);  // alternating rails
  EXPECT_NEAR(rail0 + rail1, 8.0 * 1024.0, 1.0);
}

TEST(MultiRail, ConcurrentSendersShareOneRailFairly) {
  auto spec = hw::ClusterSpec::multi_rail(2, 4, 1);
  spec.carry_data = false;
  sim::Engine eng;
  hw::Cluster cl(eng, spec);
  Net net(cl);
  const std::size_t n = 4 << 20;
  auto src = hw::Buffer::phantom(n);
  std::vector<hw::Buffer> dsts;
  for (int i = 0; i < 4; ++i) dsts.push_back(hw::Buffer::phantom(n));
  auto sender = [&](int r) -> sim::Task<void> {
    co_await net.send(r, 4 + r, 0, src.view());
  };
  auto receiver = [&](int r) -> sim::Task<void> {
    co_await net.recv(4 + r, r, 0, dsts[static_cast<size_t>(r)].view());
  };
  for (int r = 0; r < 4; ++r) {
    eng.spawn(sender(r));
    eng.spawn(receiver(r));
  }
  eng.run();
  // 4 flows of 4 MB over one 12.5 GB/s rail: ~ 16 MB / 12.5 GB/s.
  const double expect = 4.0 * static_cast<double>(n) / spec.hca_bw;
  EXPECT_NEAR(eng.now(), expect, 0.2 * expect);
}

TEST(MultiRail, LatencyHalvesForLargeMessagesWithTwoRails) {
  // The Figure 3 shape: above the striping threshold, latency with 2 HCAs
  // is about half of 1 HCA; below it they are equal.
  auto one = hw::ClusterSpec::multi_rail(2, 1, 1);
  auto two = hw::ClusterSpec::multi_rail(2, 1, 2);
  for (std::size_t n : {8192u, 65536u, 1048576u, 4194304u}) {
    const double t1 = measure_send(one, n);
    const double t2 = measure_send(two, n);
    if (n <= two.stripe_threshold) {
      EXPECT_NEAR(t1, t2, 1e-12) << n;
    } else {
      EXPECT_GT(t1 / t2, 1.5) << n;
    }
  }
}

}  // namespace
}  // namespace hmca::net
