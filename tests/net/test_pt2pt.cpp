// Point-to-point semantics: matching, ordering, wildcards, protocols.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "hw/buffer.hpp"
#include "hw/cluster.hpp"
#include "net/net.hpp"
#include "sim/engine.hpp"

namespace hmca::net {
namespace {

struct Fixture {
  explicit Fixture(hw::ClusterSpec spec)
      : cl(eng, spec), net(cl) {}
  sim::Engine eng;
  hw::Cluster cl;
  Net net;
};

hw::Buffer filled(std::size_t n, char c) {
  auto b = hw::Buffer::data(n);
  std::memset(b.bytes(), c, n);
  return b;
}

TEST(Pt2Pt, EagerInterNodeDeliversPayload) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  auto src = filled(128, 'a');
  auto dst = hw::Buffer::data(128);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 7, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 7, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[0], 'a');
  EXPECT_EQ(dst.as<char>()[127], 'a');
  EXPECT_EQ(f.net.messages_delivered(), 1u);
}

TEST(Pt2Pt, RendezvousInterNodeDeliversPayload) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  const std::size_t n = 1 << 20;  // 1 MB: rendezvous + striping
  auto src = filled(n, 'z');
  auto dst = hw::Buffer::data(n);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 0, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[0], 'z');
  EXPECT_EQ(dst.as<char>()[n - 1], 'z');
}

TEST(Pt2Pt, IntraNodeSmallUsesDoubleCopy) {
  Fixture f(hw::ClusterSpec::thor(1, 2));
  auto src = filled(1024, 'q');
  auto dst = hw::Buffer::data(1024);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 3, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 3, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[1023], 'q');
}

TEST(Pt2Pt, IntraNodeLargeUsesCmaSingleCopy) {
  Fixture f(hw::ClusterSpec::thor(1, 2));
  const std::size_t n = 1 << 20;
  auto src = filled(n, 'c');
  auto dst = hw::Buffer::data(n);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 0, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[n - 1], 'c');
  // Single copy at ~core rate: roughly n / core_copy_bw seconds; the double
  // copy path would be about twice that.
  const double expect = static_cast<double>(n) / f.cl.spec().core_copy_bw;
  EXPECT_LT(f.eng.now(), 1.6 * expect);
  EXPECT_GT(f.eng.now(), 0.9 * expect);
}

TEST(Pt2Pt, UnexpectedMessageIsBufferedUntilRecv) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  auto src = filled(64, 'u');
  auto dst = hw::Buffer::data(64);
  double recv_done = -1;
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 5, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.eng.sleep(1.0);  // recv posted long after arrival
    co_await f.net.recv(1, 0, 5, dst.view());
    recv_done = f.eng.now();
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[0], 'u');
  EXPECT_GE(recv_done, 1.0);
  EXPECT_EQ(f.net.unexpected_messages(), 1u);
}

TEST(Pt2Pt, MessagesDoNotOvertakeSameSourceAndTag) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  auto a = filled(32, '1');
  auto b = filled(32, '2');
  auto d1 = hw::Buffer::data(32);
  auto d2 = hw::Buffer::data(32);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 9, a.view());
    co_await f.net.send(0, 1, 9, b.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 9, d1.view());
    co_await f.net.recv(1, 0, 9, d2.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(d1.as<char>()[0], '1');
  EXPECT_EQ(d2.as<char>()[0], '2');
}

TEST(Pt2Pt, TagsSelectMessages) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  auto a = filled(32, 'A');
  auto b = filled(32, 'B');
  auto da = hw::Buffer::data(32);
  auto db = hw::Buffer::data(32);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 1, a.view());
    co_await f.net.send(0, 1, 2, b.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    // Receive tag 2 first even though tag 1 arrived first.
    co_await f.net.recv(1, 0, 2, db.view());
    co_await f.net.recv(1, 0, 1, da.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(da.as<char>()[0], 'A');
  EXPECT_EQ(db.as<char>()[0], 'B');
}

TEST(Pt2Pt, WildcardSourceAndTag) {
  Fixture f(hw::ClusterSpec::thor(3, 1));
  auto a = filled(16, 'x');
  auto dst = hw::Buffer::data(16);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.eng.sleep(0.5);
    co_await f.net.send(2, 1, 77, a.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, kAnySource, kAnyTag, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[0], 'x');
}

TEST(Pt2Pt, SizeMismatchThrows) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  auto src = filled(64, 's');
  auto dst = hw::Buffer::data(32);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 0, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  EXPECT_THROW(f.eng.run(), sim::SimError);
}

TEST(Pt2Pt, SelfSendRejected) {
  Fixture f(hw::ClusterSpec::thor(2, 1));
  auto src = filled(8, 's');
  auto t = [&]() -> sim::Task<void> { co_await f.net.send(0, 0, 0, src.view()); };
  f.eng.spawn(t());
  EXPECT_THROW(f.eng.run(), sim::SimError);
}

TEST(Pt2Pt, CmaGetCopiesWithoutMatching) {
  Fixture f(hw::ClusterSpec::thor(1, 4));
  auto src = filled(4096, 'g');
  auto dst = hw::Buffer::data(4096);
  auto getter = [&]() -> sim::Task<void> {
    co_await f.net.cma_get(2, src.view(), dst.view());
  };
  f.eng.spawn(getter());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[4095], 'g');
  EXPECT_EQ(f.net.messages_delivered(), 0u);
}

TEST(Pt2Pt, RdmaGetLoopbackMovesThroughHca) {
  Fixture f(hw::ClusterSpec::thor(1, 4));
  const std::size_t n = 1 << 20;
  auto src = filled(n, 'r');
  auto dst = hw::Buffer::data(n);
  auto getter = [&]() -> sim::Task<void> {
    co_await f.net.rdma_get(2, 0, src.view(), dst.view(), 0);
  };
  f.eng.spawn(getter());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[n - 1], 'r');
  // Data must have crossed HCA0's ports.
  EXPECT_GT(f.cl.net().bytes_served(f.cl.hca_tx(0, 0)), 0.0);
  EXPECT_GT(f.cl.net().bytes_served(f.cl.hca_rx(0, 0)), 0.0);
}

TEST(Pt2Pt, RdmaGetStripedUsesAllRails) {
  Fixture f(hw::ClusterSpec::thor(1, 4));
  const std::size_t n = 1 << 20;
  auto src = filled(n, 'S');
  auto dst = hw::Buffer::data(n);
  auto getter = [&]() -> sim::Task<void> {
    co_await f.net.rdma_get(2, 0, src.view(), dst.view(), Net::kStripe);
  };
  f.eng.spawn(getter());
  f.eng.run();
  EXPECT_EQ(dst.as<char>()[0], 'S');
  EXPECT_GT(f.cl.net().bytes_served(f.cl.hca_tx(0, 0)), 0.0);
  EXPECT_GT(f.cl.net().bytes_served(f.cl.hca_tx(0, 1)), 0.0);
}

TEST(Pt2Pt, PhantomBuffersTimeWithoutData) {
  auto spec = hw::ClusterSpec::thor(2, 1);
  spec.carry_data = false;
  Fixture f(spec);
  auto src = hw::Buffer::phantom(1 << 20);
  auto dst = hw::Buffer::phantom(1 << 20);
  auto sender = [&]() -> sim::Task<void> {
    co_await f.net.send(0, 1, 0, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await f.net.recv(1, 0, 0, dst.view());
  };
  f.eng.spawn(sender());
  f.eng.spawn(receiver());
  f.eng.run();
  EXPECT_GT(f.eng.now(), 0.0);
}

}  // namespace
}  // namespace hmca::net
