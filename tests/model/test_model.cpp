// Cost models (Eqs. 1-7): parameter fitting, equation shapes, and
// validation against the simulator (the Sec. 4.3 experiments in miniature).
#include <gtest/gtest.h>

#include <cmath>

#include "core/hierarchical.hpp"
#include "core/tuner.hpp"
#include "model/cost.hpp"
#include "model/params.hpp"
#include "osu/harness.hpp"

namespace hmca::model {
namespace {

TEST(Params, FromSpecMirrorsHardware) {
  const auto spec = hw::ClusterSpec::thor(2, 2);
  const auto p = ModelParams::from_spec(spec);
  EXPECT_DOUBLE_EQ(p.bw_h, spec.hca_bw);
  EXPECT_EQ(p.hcas, 2);
  EXPECT_DOUBLE_EQ(p.mem_bw, spec.mem_bw);
  EXPECT_GT(p.alpha_c, 0);
  EXPECT_GT(p.alpha_h, 0);
}

TEST(Params, MeasuredFitIsCloseToSpec) {
  const auto spec = hw::ClusterSpec::thor(2, 2);
  const auto fit = ModelParams::measure(spec);
  const auto direct = ModelParams::from_spec(spec);
  // Bandwidths should fit within a few percent; alphas within ~1 us.
  EXPECT_NEAR(fit.bw_c, direct.bw_c, 0.05 * direct.bw_c);
  EXPECT_NEAR(fit.bw_h, direct.bw_h, 0.05 * direct.bw_h);
  EXPECT_NEAR(fit.alpha_c, direct.alpha_c, 1e-6);
}

TEST(Params, PrimitiveCostShapes) {
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(2, 32));
  // Tc grows with congestion.
  EXPECT_GT(p.Tc(1e6, 32), p.Tc(1e6, 1));
  // Th uses all rails, but loopback crosses PCIe twice per adapter.
  EXPECT_LT(p.Th(1e6, false), p.alpha_h + 1e6 / p.bw_h);
  EXPECT_GT(p.Th(1e6, true), p.Th(1e6, false));
  // cg is 1 for a single copier and grows with the copier count.
  EXPECT_DOUBLE_EQ(p.cg(1e6, 1), 1.0);
  EXPECT_GT(p.cg(1e6, 31), p.cg(1e6, 8));
  EXPECT_GT(p.cg(1e6, 31), 4.0);
}

TEST(CostEq1, OffloadSplitsBalanceCpuAndHca) {
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(1, 8));
  const double d = optimal_offload(p, 8, 1 << 20);
  ASSERT_GT(d, 0.5);
  ASSERT_LE(d, 7.0);
  // At the (real-valued) Eq. 1 optimum the two arms of Eq. 2 balance up to
  // the alpha terms.
  const double cpu = (8 - 1 - d) * p.Tc(1 << 20, 8);
  const double hca = 8.0 * d * p.Th(1 << 20);
  EXPECT_LT(std::abs(cpu - hca) / std::max(cpu, hca), 0.1);
}

TEST(CostEq2, IntraTimeIsMaxOfArms) {
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(1, 4));
  const double m = 1 << 20;
  // d = 0: pure CPU arm.
  EXPECT_NEAR(mha_intra_time(p, 4, m, 0), p.Tl(m) + 3 * p.Tc(m, 4), 1e-12);
  // d = 3: pure HCA arm.
  EXPECT_NEAR(mha_intra_time(p, 4, m, 3), p.Tl(m) + 4.0 * 3 * p.Th(m), 1e-12);
  // Optimal d is no worse than either extreme.
  const double opt = mha_intra_time(p, 4, m);
  EXPECT_LE(opt, mha_intra_time(p, 4, m, 0) + 1e-12);
  EXPECT_LE(opt, mha_intra_time(p, 4, m, 3) + 1e-12);
}

TEST(CostEq34, RdSavesAlphasRingSavesNothingOnWire) {
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(16, 32));
  const double ml = 32.0 * 1024;
  // Same wire-byte term; RD has fewer startups.
  EXPECT_LT(phase2_rd_time(p, 16, ml), phase2_ring_time(p, 16, ml));
  const double data_term = 15 * ml / (p.bw_h * p.hcas);
  EXPECT_NEAR(phase2_ring_time(p, 16, ml) - 15 * p.alpha_h, data_term, 1e-9);
  EXPECT_NEAR(phase2_rd_time(p, 16, ml) - 4 * p.alpha_h, data_term, 1e-9);
}

TEST(CostEq67, InterModelsArePositiveAndGrowWithSize) {
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(16, 32));
  for (double m : {128.0, 4096.0, 1e6}) {
    EXPECT_GT(mha_inter_time_rd(p, 16, 32, m), 0.0);
    EXPECT_GT(mha_inter_time_ring(p, 16, 32, m), 0.0);
  }
  EXPECT_GT(mha_inter_time_ring(p, 16, 32, 1e6),
            mha_inter_time_ring(p, 16, 32, 4096.0));
  EXPECT_GT(mha_inter_time_rd(p, 16, 32, 1e6),
            mha_inter_time_rd(p, 16, 32, 4096.0));
}

TEST(Cg, SizeDependence) {
  // Startup-dominated small copies barely contend; large ones slow down by
  // the aggregate copy-rate ratio.
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(1, 32));
  EXPECT_LT(p.cg(64.0, 31), 1.5);
  EXPECT_GT(p.cg(1e6, 31), 5.0);
  EXPECT_GT(p.cg(1e6, 31), p.cg(16384.0, 31));
}

TEST(CostEdgeCases, DegenerateTopologies) {
  const auto p = ModelParams::from_spec(hw::ClusterSpec::thor(1, 1));
  EXPECT_DOUBLE_EQ(phase2_rd_time(p, 1, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(phase2_ring_time(p, 1, 1e6), 0.0);
  EXPECT_EQ(optimal_offload(p, 1, 1e6), 0);
  EXPECT_GT(mha_inter_time_rd(p, 1, 1, 1e6), 0.0);  // just phase 1
}

// ---- Sec. 4.3-style validation: model vs simulator ----

TEST(Validation, MhaIntraModelTracksSimulator) {
  // Fig. 9 in miniature: 4 processes, a few sizes; the prediction should
  // track the measured trend within ~40%.
  const auto spec = hw::ClusterSpec::thor(1, 4);
  const auto p = ModelParams::from_spec(spec);
  for (std::size_t msg : {1u << 18, 1u << 20, 1u << 22}) {
    const double actual = core::OffloadTuner::measure(spec, 4, msg, -1);
    const double predicted = mha_intra_time(p, 4, static_cast<double>(msg));
    EXPECT_LT(std::abs(predicted - actual) / actual, 0.4)
        << "msg=" << msg << " actual=" << actual << " pred=" << predicted;
  }
}

TEST(Validation, MhaInterModelTracksSimulator) {
  // Fig. 10 in miniature: 4 nodes x 4 PPN.
  const auto spec = hw::ClusterSpec::thor(4, 4);
  const auto p = ModelParams::from_spec(spec);
  for (std::size_t msg : {16384u, 262144u}) {
    const double actual = osu::measure_allgather(
        spec,
        [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
           bool ip) {
          return core::allgather_hierarchical(c, r, s, rv, m, ip,
                                              core::HierOptions{});
        },
        msg);
    const double predicted =
        std::min(mha_inter_time_rd(p, 4, 4, static_cast<double>(msg)),
                 mha_inter_time_ring(p, 4, 4, static_cast<double>(msg)));
    EXPECT_LT(std::abs(predicted - actual) / actual, 0.6)
        << "msg=" << msg << " actual=" << actual << " pred=" << predicted;
  }
}

}  // namespace
}  // namespace hmca::model
