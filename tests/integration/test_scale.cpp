// Scale smoke tests for the simulator core.
//
// The calendar-queue scheduler, arena-allocated flow state and incremental
// fluid solver exist so thousand-rank worlds stay cheap. These tests pin
// that claim in tier-1: large worlds must *complete* under a generous
// event-count budget (an O(n^2) regression in the queue or the solver trips
// the engine watchdog long before the suite times out), and a fig12-shaped
// world must produce byte-identical Chrome traces across two runs — the
// end-to-end determinism contract of the FIFO tie-break.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "coll/allgather.hpp"
#include "core/selector.hpp"
#include "hw/buffer.hpp"
#include "hw/spec.hpp"
#include "mpi/comm.hpp"
#include "obs/chrome_trace.hpp"
#include "osu/harness.hpp"
#include "profiles/profiles.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace hmca {
namespace {

sim::Task<void> ag_rank(mpi::Comm& comm, const coll::AllgatherFn& fn, int r,
                        hw::BufView send, hw::BufView recv, std::size_t msg) {
  co_await fn(comm, r, send, recv, msg, /*in_place=*/false);
}

/// One phantom-buffer allgather with an event budget: like the OSU
/// harness's counted run, but `eng.run(budget)` turns an event-count
/// explosion into a fast SimError instead of a suite timeout.
std::uint64_t run_budgeted(hw::ClusterSpec spec, const coll::AllgatherFn& fn,
                           std::size_t msg, std::uint64_t budget) {
  spec.carry_data = false;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<hw::Buffer> sends, recvs;
  sends.reserve(static_cast<std::size_t>(p));
  recvs.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    sends.push_back(hw::Buffer::phantom(msg));
    recvs.push_back(hw::Buffer::phantom(msg * static_cast<std::size_t>(p)));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(ag_rank(comm, fn, r, sends[static_cast<std::size_t>(r)].view(),
                      recvs[static_cast<std::size_t>(r)].view(), msg));
  }
  eng.run(budget);
  EXPECT_EQ(eng.alive_tasks(), 0) << "ranks left suspended";
  EXPECT_GT(eng.now(), 0.0);
  return eng.events_dispatched();
}

TEST(Scale, ThousandRankGraphModeAllgatherUnderBudget) {
  // 32 nodes x 32 ppn = 1024 ranks through the full MHA graph-mode path
  // (streaming task graph, fluid network, calendar queue). The healthy run
  // dispatches ~1.05M events at this message size; 4M is ~4x headroom, and
  // anything super-linear in the queue or solver blows through it.
  core::register_core_algorithms();
  const auto spec = hw::ClusterSpec::thor(32, 32);
  const std::uint64_t events =
      run_budgeted(spec, profiles::mha().allgather, 4096, 4'000'000);
  EXPECT_GT(events, 500'000u) << "world suspiciously small — wrong shape?";
}

TEST(Scale, FaultedWideWorldCompletesUnderBudget) {
  // 256 nodes x 2 ppn with one HCA killed mid-collective: the degraded
  // re-route must still converge, at scale, within ~4x of the measured
  // healthy event count (~0.3M).
  core::register_core_algorithms();
  auto spec = hw::ClusterSpec::thor(256, 2);
  spec.fault_plan = "kill:node=3,hca=1,t=1e-5";
  const std::uint64_t events =
      run_budgeted(spec, profiles::mha().allgather, 4096, 1'200'000);
  EXPECT_GT(events, 100'000u) << "world suspiciously small — wrong shape?";
}

TEST(Scale, Fig12WorldTracesAreByteIdentical) {
  // Determinism end to end: two identical fig12-shaped runs (8 nodes x
  // 32 ppn, the paper's Fig. 12 world) must produce byte-identical Chrome
  // traces. Any tie-break instability in the calendar queue, iteration-
  // order leak in the fluid solver, or address-dependent ordering anywhere
  // in the stack shows up as a span diff here.
  core::register_core_algorithms();
  const auto spec = hw::ClusterSpec::thor(8, 32);
  const auto& fn = profiles::mha().allgather;
  auto traced_run = [&] {
    trace::Tracer tracer;
    const double s = osu::measure_allgather(spec, fn, 65536, &tracer);
    EXPECT_GT(s, 0.0);
    std::ostringstream os;
    obs::write_chrome_trace(os, tracer.spans());
    return std::move(os).str();
  };
  const std::string a = traced_run();
  const std::string b = traced_run();
  ASSERT_FALSE(a.empty());
  EXPECT_TRUE(a == b) << "traces diverged between identical runs";
}

}  // namespace
}  // namespace hmca
