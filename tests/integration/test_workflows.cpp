// Integration tests: realistic multi-collective workflows on one world —
// mixed operations back to back, concurrent collectives on disjoint
// sub-communicators, repeated-operation determinism, and failure
// propagation.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "core/mha.hpp"
#include "core/mha_rooted.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace hmca {
namespace {

// One rank's program for a small "iterative solver" pattern: broadcast the
// parameters, allgather the halo, allreduce the residual — twice.
sim::Task<void> solver_rank(mpi::Comm& comm, int r, hw::Buffer* params,
                            hw::Buffer* halo_send, hw::Buffer* halo_recv,
                            hw::Buffer* residual, std::size_t msg) {
  const std::size_t count = residual->size() / 8;
  for (int iter = 0; iter < 2; ++iter) {
    co_await core::mha_bcast(comm, r, 0, params->view());
    co_await core::mha_allgather(comm, r, halo_send->view(),
                                 halo_recv->view(), msg);
    co_await core::mha_allreduce(comm, r, residual->view(), count,
                                 mpi::Dtype::kInt64, mpi::ReduceOp::kSum);
    co_await coll::barrier_dissemination(comm, r);
  }
}

TEST(Workflows, MixedCollectivesBackToBack) {
  auto spec = hw::ClusterSpec::thor(2, 3);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t msg = 512;

  std::vector<hw::Buffer> params, hs, hr, res;
  for (int r = 0; r < p; ++r) {
    auto pr = hw::Buffer::data(256);
    if (r == 0) std::memset(pr.bytes(), 'P', 256);
    params.push_back(std::move(pr));
    auto s = hw::Buffer::data(msg);
    std::memset(s.bytes(), static_cast<char>('a' + r), msg);
    hs.push_back(std::move(s));
    hr.push_back(hw::Buffer::data(msg * static_cast<std::size_t>(p)));
    auto rs = hw::Buffer::data(64);
    for (int e = 0; e < 8; ++e) rs.as<std::int64_t>()[e] = r + e;
    res.push_back(std::move(rs));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(solver_rank(comm, r, &params[static_cast<std::size_t>(r)],
                          &hs[static_cast<std::size_t>(r)],
                          &hr[static_cast<std::size_t>(r)],
                          &res[static_cast<std::size_t>(r)], msg));
  }
  eng.run();

  for (int r = 0; r < p; ++r) {
    // Broadcast parameters everywhere.
    EXPECT_EQ(params[static_cast<std::size_t>(r)].as<char>()[0], 'P');
    // Halo blocks in rank order.
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(hr[static_cast<std::size_t>(r)]
                    .as<char>()[static_cast<std::size_t>(src) * msg],
                'a' + src);
    }
    // Residual allreduced twice: after iter 1, value = sum_r(r+e); after
    // iter 2, value = p * that sum.
    for (int e = 0; e < 8; ++e) {
      std::int64_t once = 0;
      for (int q = 0; q < p; ++q) once += q + e;
      EXPECT_EQ(res[static_cast<std::size_t>(r)].as<std::int64_t>()[e],
                once * p)
          << "rank " << r << " elem " << e;
    }
  }
}

// Rank program for the disjoint-comms test. A free function: a coroutine
// must not outlive lambda captures, so parameters are passed explicitly.
sim::Task<void> group_rank(mpi::Comm& comm, int rr, char base,
                           hw::Buffer* recv, std::size_t msg) {
  auto send = hw::Buffer::data(msg);
  std::memset(send.bytes(), base + rr, msg);
  co_await coll::allgather_ring(comm, rr, send.view(), recv->view(), msg);
}

TEST(Workflows, ConcurrentCollectivesOnDisjointComms) {
  // Two node-local groups run independent Allgathers at the same time;
  // context ids keep their matching separate.
  auto spec = hw::ClusterSpec::thor(2, 4);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& g0 = world.node_comm(0);
  auto& g1 = world.node_comm(1);
  const std::size_t msg = 256;

  std::vector<hw::Buffer> r0, r1;
  for (int r = 0; r < 4; ++r) {
    r0.push_back(hw::Buffer::data(msg * 4));
    r1.push_back(hw::Buffer::data(msg * 4));
  }
  for (int r = 0; r < 4; ++r) {
    eng.spawn(group_rank(g0, r, 'A', &r0[static_cast<std::size_t>(r)], msg));
    eng.spawn(group_rank(g1, r, 'a', &r1[static_cast<std::size_t>(r)], msg));
  }
  eng.run();

  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(r0[static_cast<std::size_t>(r)]
                    .as<char>()[static_cast<std::size_t>(s) * msg],
                'A' + s);
      EXPECT_EQ(r1[static_cast<std::size_t>(r)]
                    .as<char>()[static_cast<std::size_t>(s) * msg],
                'a' + s);
    }
  }
}

TEST(Workflows, RepeatedOperationsAreDeterministic) {
  // Two identical Allgathers in one world take identical time.
  auto spec = hw::ClusterSpec::thor(2, 2);
  spec.carry_data = false;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const std::size_t msg = 65536;
  const int p = comm.size();
  std::vector<double> d1(static_cast<std::size_t>(p)), d2(static_cast<std::size_t>(p));
  auto prog = [&](int r) -> sim::Task<void> {
    auto send = hw::Buffer::phantom(msg);
    auto recv = hw::Buffer::phantom(msg * static_cast<std::size_t>(p));
    co_await comm.barrier(r);
    double t0 = eng.now();
    co_await core::mha_allgather(comm, r, send.view(), recv.view(), msg);
    co_await comm.barrier(r);
    d1[static_cast<std::size_t>(r)] = eng.now() - t0;
    t0 = eng.now();
    co_await core::mha_allgather(comm, r, send.view(), recv.view(), msg);
    co_await comm.barrier(r);
    d2[static_cast<std::size_t>(r)] = eng.now() - t0;
  };
  for (int r = 0; r < p; ++r) eng.spawn(prog(r));
  eng.run();
  for (int r = 0; r < p; ++r) {
    EXPECT_NEAR(d1[static_cast<std::size_t>(r)], d2[static_cast<std::size_t>(r)],
                1e-12);
  }
}

TEST(Workflows, SizeMismatchSurfacesAsError) {
  auto spec = hw::ClusterSpec::thor(2, 1);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto a = hw::Buffer::data(64);
  auto b = hw::Buffer::data(32);
  auto s = [&]() -> sim::Task<void> { co_await comm.send(0, 1, 0, a.view()); };
  auto r = [&]() -> sim::Task<void> { co_await comm.recv(1, 0, 0, b.view()); };
  eng.spawn(s());
  eng.spawn(r());
  EXPECT_THROW(eng.run(), sim::SimError);
}

TEST(Workflows, MissingParticipantDeadlocksDetectably) {
  // 3 of 4 ranks enter the allgather: the run must end in a detected
  // deadlock, not a hang.
  auto spec = hw::ClusterSpec::thor(1, 4);
  spec.carry_data = false;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const std::size_t msg = 1024;
  auto prog = [&](int r) -> sim::Task<void> {
    auto send = hw::Buffer::phantom(msg);
    auto recv = hw::Buffer::phantom(msg * 4);
    co_await coll::allgather_ring(comm, r, send.view(), recv.view(), msg);
  };
  for (int r = 0; r < 3; ++r) eng.spawn(prog(r));  // rank 3 missing
  EXPECT_THROW(eng.run(), sim::SimError);
}

}  // namespace
}  // namespace hmca
