// Malformed-program rejection: Program::validate() (and the Planner, which
// validates before lowering) must refuse bad compositions with errors that
// name the offending prim and its shapes — a composition bug should read
// like a compile error, not a simulation hang.
#include <gtest/gtest.h>

#include <string>

#include "coll/prim/builders.hpp"
#include "coll/prim/planner.hpp"
#include "coll/prim/program.hpp"
#include "hw/buffer.hpp"
#include "hw/spec.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace hmca::coll::prim {
namespace {

// Runs validate() and returns the PlanError message (failing the test if
// the program was accepted).
std::string rejection(const Program& prog) {
  try {
    prog.validate();
  } catch (const PlanError& e) {
    return e.what();
  }
  ADD_FAILURE() << "program was accepted";
  return {};
}

Program base(int nranks = 4) {
  Program p;
  p.nranks = nranks;
  p.send_bytes = 64;
  p.recv_bytes = 256;
  p.scratch_bytes = 128;
  return p;
}

// ---- satellite requirement: reduce on a non-commutative dtype without
// ordered mode is a composition error ----

TEST(PrimProgram, ReduceFloatWithoutOrderedRejected) {
  Program p = base();
  p.reduce(0, {1, 2, 3}, Space::kRecv, {0, 64}, mpi::Dtype::kFloat,
           mpi::ReduceOp::kSum, /*ordered=*/false);
  const std::string msg = rejection(p);
  EXPECT_NE(msg.find("non-commutative dtype float"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ordered"), std::string::npos) << msg;
}

TEST(PrimProgram, ReduceDoubleWithoutOrderedRejected) {
  Program p = base();
  p.reduce(0, {1}, Space::kScratch, {8, 16}, mpi::Dtype::kDouble,
           mpi::ReduceOp::kMax, /*ordered=*/false);
  EXPECT_NE(rejection(p).find("non-commutative dtype double"),
            std::string::npos);
}

TEST(PrimProgram, OrderedFloatReduceAccepted) {
  Program p = base();
  p.reduce(0, {1, 2, 3}, Space::kRecv, {0, 64}, mpi::Dtype::kFloat,
           mpi::ReduceOp::kSum, /*ordered=*/true);
  EXPECT_NO_THROW(p.validate());
}

TEST(PrimProgram, IntReduceNeedsNoOrdering) {
  Program p = base();
  p.reduce(0, {1, 2}, Space::kRecv, {0, 32}, mpi::Dtype::kInt64,
           mpi::ReduceOp::kProd, /*ordered=*/false);
  EXPECT_NO_THROW(p.validate());
}

// ---- satellite requirement: overlapping shard ranges name both owners
// and both ranges ----

TEST(PrimProgram, OverlappingShardRangesRejected) {
  Program p = base();
  p.shard(Space::kRecv, {{0, {0, 100}}, {1, {96, 32}}});
  const std::string msg = rejection(p);
  EXPECT_NE(msg.find("overlapping shard ranges"), std::string::npos) << msg;
  EXPECT_NE(msg.find("owner 0 [0, 100)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("owner 1 [96, 128)"), std::string::npos) << msg;
}

TEST(PrimProgram, DisjointShardsAccepted) {
  Program p = base();
  p.shard(Space::kRecv, {{0, {0, 96}}, {1, {96, 32}}, {2, {128, 0}}});
  p.unshard(Space::kRecv, {0, 1, 2, 3});
  EXPECT_NO_THROW(p.validate());
}

TEST(PrimProgram, ZeroLengthShardsNeverOverlap) {
  // Zero-length tails (uneven chunk splits) share offsets legally.
  Program p = base();
  p.shard(Space::kRecv, {{0, {0, 256}}, {1, {256, 0}}, {2, {256, 0}}});
  EXPECT_NO_THROW(p.validate());
}

// ---- range / peer / space shape errors ----

TEST(PrimProgram, RangeBeyondSpaceNamesSpaceAndExtent) {
  Program p = base();
  p.multicast(0, {1}, Space::kRecv, {200, 100}, Space::kRecv, 0);
  const std::string msg = rejection(p);
  EXPECT_NE(msg.find("source range [200, 300)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("exceeds recv space of 256 bytes"), std::string::npos)
      << msg;
}

TEST(PrimProgram, DestinationRangeCheckedAgainstItsOwnSpace) {
  Program p = base();
  // 64 bytes fit the recv source but overrun scratch at offset 100.
  p.multicast(0, {1}, Space::kRecv, {0, 64}, Space::kScratch, 100);
  EXPECT_NE(rejection(p).find("scratch space of 128 bytes"),
            std::string::npos);
}

TEST(PrimProgram, PeerOutsideWorldRejected) {
  Program p = base(4);
  p.multicast(0, {1, 4}, Space::kSend, {0, 8}, Space::kRecv, 0);
  EXPECT_NE(rejection(p).find("peer rank 4 outside world [0, 4)"),
            std::string::npos);
}

TEST(PrimProgram, DuplicatePeerRejected) {
  Program p = base();
  p.multicast(0, {1, 2, 1}, Space::kSend, {0, 8}, Space::kRecv, 0);
  EXPECT_NE(rejection(p).find("duplicate peer 1"), std::string::npos);
}

TEST(PrimProgram, RootListedAsContributorRejected) {
  Program p = base();
  p.reduce(2, {1, 2}, Space::kRecv, {0, 8}, mpi::Dtype::kInt32,
           mpi::ReduceOp::kSum, false);
  EXPECT_NE(rejection(p).find("root 2 listed as its own contributor"),
            std::string::npos);
}

TEST(PrimProgram, WritingSendSpaceRejected) {
  Program mc = base();
  mc.multicast(0, {1}, Space::kRecv, {0, 8}, Space::kSend, 0);
  EXPECT_NE(rejection(mc).find("read-only send space"), std::string::npos);

  Program rd = base();
  rd.reduce(0, {1}, Space::kSend, {0, 8}, mpi::Dtype::kInt32,
            mpi::ReduceOp::kSum, false);
  EXPECT_NE(rejection(rd).find("read-only send space"), std::string::npos);
}

TEST(PrimProgram, UnshardWithoutShardRejected) {
  Program p = base();
  p.unshard(Space::kRecv, {0, 1});
  EXPECT_NE(
      rejection(p).find("unshard of recv space without a preceding shard"),
      std::string::npos);
}

TEST(PrimProgram, ReduceRangeMustBeElementAligned) {
  Program p = base();
  p.reduce(0, {1}, Space::kRecv, {0, 10}, mpi::Dtype::kInt32,
           mpi::ReduceOp::kSum, false);
  EXPECT_NE(rejection(p).find("not a multiple of the 4-byte element size"),
            std::string::npos);
}

TEST(PrimProgram, EmptyProgramNeedsRanks) {
  Program p;
  p.nranks = 0;
  EXPECT_THROW(p.validate(), PlanError);
}

// ---- error messages carry the prim index and label ----

TEST(PrimProgram, ErrorNamesPrimIndexAndLabel) {
  Program p = base();
  p.fence();
  p.multicast(0, {9}, Space::kSend, {0, 8}, Space::kRecv, 0).label =
      "leader-exchange";
  const std::string msg = rejection(p);
  EXPECT_NE(msg.find("prim #1 (multicast 'leader-exchange')"),
            std::string::npos)
      << msg;
}

// ---- the Planner front door rejects before any simulated byte moves ----

TEST(PrimProgram, PlannerValidatesBeforeLowering) {
  auto spec = hw::ClusterSpec::thor(1, 4);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();

  Program p = base();
  p.shard(Space::kRecv, {{0, {0, 100}}, {1, {50, 100}}});

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < 4; ++r) {
    sends.push_back(hw::Buffer::data(p.send_bytes));
    recvs.push_back(hw::Buffer::data(p.recv_bytes));
  }
  for (int r = 0; r < 4; ++r) {
    eng.spawn(Planner::run(comm, r, sends[static_cast<std::size_t>(r)].view(),
                           recvs[static_cast<std::size_t>(r)].view(), p));
  }
  EXPECT_THROW(eng.run(), PlanError);
}

// ---- the builders emit programs that validate ----

TEST(PrimProgram, BuilderProgramsValidate) {
  EXPECT_NO_THROW(alltoall_direct(8, 4096).validate());
  EXPECT_NO_THROW(reduce_scatter_ring(6, 1000, mpi::Dtype::kDouble,
                                      mpi::ReduceOp::kSum)
                      .validate());
  EXPECT_NO_THROW(
      reduce_scatter_rh(8, 64, mpi::Dtype::kFloat, mpi::ReduceOp::kSum)
          .validate());
  PlanLevels levels = {
      {{{{0, 1, 2, 3}, 0}, {{4, 5, 6, 7}, 4}}},  // two node groups
      {{{{0, 4}, 0}}},                           // leader level
  };
  EXPECT_NO_THROW(
      allreduce_rs_ag(levels, 96, mpi::Dtype::kFloat, mpi::ReduceOp::kSum)
          .validate());
}

}  // namespace
}  // namespace hmca::coll::prim
