// Alltoall / Alltoallv correctness: the planner-backed direct full-mesh,
// the legacy pairwise schedule, the hierarchical leader exchange and the
// core::mha_alltoall dispatcher, on healthy worlds (the fault matrix lives
// in test_conformance.cpp).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/registry.hpp"
#include "core/mha.hpp"
#include "core/selector.hpp"
#include "testing/conformance.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::conf::RankBytes;
using hmca::testing::conf::Trial;

Trial healthy(int nodes, int ppn, int hcas = 1, int sockets = 1) {
  Trial t;
  t.nodes = nodes;
  t.ppn = ppn;
  t.hcas = hcas;
  t.sockets = sockets;
  return t;
}

AlltoallFn fn_direct() {
  return [](mpi::Comm& c, int my, hw::BufView s, hw::BufView r,
            std::size_t m) { return alltoall_direct(c, my, s, r, m); };
}
AlltoallFn fn_pairwise() {
  return [](mpi::Comm& c, int my, hw::BufView s, hw::BufView r,
            std::size_t m) { return alltoall_pairwise(c, my, s, r, m); };
}
AlltoallFn fn_mha() {
  return [](mpi::Comm& c, int my, hw::BufView s, hw::BufView r,
            std::size_t m) { return core::mha_alltoall(c, my, s, r, m); };
}

void expect_alltoall_ok(const AlltoallFn& fn, const char* name,
                        const Trial& t, std::size_t msg) {
  const RankBytes got = hmca::testing::conf::run_alltoall(fn, t, msg);
  const RankBytes want =
      hmca::testing::conf::alltoall_expected(t.procs(), msg);
  EXPECT_EQ(hmca::testing::conf::diff_results(got, want), "")
      << name << " nodes=" << t.nodes << " ppn=" << t.ppn << " msg=" << msg;
}

TEST(Alltoall, DirectMatchesExpectedAcrossShapes) {
  for (const Trial& t : {healthy(1, 4), healthy(2, 4), healthy(4, 2, 2),
                         healthy(3, 3, 2, 2), healthy(1, 1)}) {
    for (const std::size_t msg : {std::size_t{0}, std::size_t{1},
                                  std::size_t{777}, std::size_t{4096}}) {
      expect_alltoall_ok(fn_direct(), "direct", t, msg);
    }
  }
}

TEST(Alltoall, PairwiseMatchesExpected) {
  for (const Trial& t : {healthy(1, 4), healthy(2, 3), healthy(4, 2, 2)}) {
    expect_alltoall_ok(fn_pairwise(), "pairwise", t, 1000);
  }
}

TEST(Alltoall, HierLeaderMatchesExpectedOnMultiNodeWorlds) {
  core::register_core_algorithms();
  const auto& algo = Registry::instance().get_alltoall("hier_leader");
  for (const Trial& t : {healthy(2, 4), healthy(4, 2, 2), healthy(3, 3),
                         healthy(2, 1)}) {
    ASSERT_TRUE(!algo.applies ||
                algo.applies(hmca::testing::conf::shape_of(t), 512));
    for (const std::size_t msg :
         {std::size_t{0}, std::size_t{512}, std::size_t{4096}}) {
      expect_alltoall_ok(algo.fn, "hier_leader", t, msg);
    }
  }
}

TEST(Alltoall, HierLeaderDoesNotApplyToSingleNode) {
  core::register_core_algorithms();
  const auto& algo = Registry::instance().get_alltoall("hier_leader");
  ASSERT_TRUE(static_cast<bool>(algo.applies));
  EXPECT_FALSE(
      algo.applies(hmca::testing::conf::shape_of(healthy(1, 8)), 4096));
}

TEST(Alltoall, MhaDispatcherCorrectOnBothSidesOfThreshold) {
  // Small blocks route hierarchical, large ones direct; both must agree
  // with the expected exchange image.
  for (const std::size_t msg : {std::size_t{256}, std::size_t{65536}}) {
    expect_alltoall_ok(fn_mha(), "mha", healthy(2, 4, 2), msg);
  }
}

TEST(Alltoall, DirectRejectsUndersizedBuffers) {
  Trial t = healthy(1, 2);
  sim::Engine eng;
  auto spec = hmca::testing::conf::spec_of(t);
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto send = hw::Buffer::data(8);  // needs 2 * 16
  auto recv = hw::Buffer::data(32);
  eng.spawn([](mpi::Comm& c, hw::BufView s,
               hw::BufView r) -> sim::Task<void> {
    co_await alltoall_direct(c, 0, s, r, 16);
  }(comm, send.view(), recv.view()));
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

// ---- Alltoallv ----

std::vector<std::size_t> uneven_counts(int p) {
  // Deterministic irregular matrix: empty rows/columns and one large block.
  std::vector<std::size_t> counts(static_cast<std::size_t>(p * p));
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      const std::size_t menu[] = {0, 1, 17, 300, 2000};
      counts[static_cast<std::size_t>(i * p + j)] =
          menu[static_cast<std::size_t>(i * 131 + j * 7) % std::size(menu)];
    }
  }
  counts[0] = 20000;
  return counts;
}

TEST(Alltoallv, DirectHandlesUnevenCounts) {
  for (const Trial& t : {healthy(1, 4), healthy(2, 4), healthy(4, 2, 2)}) {
    const auto counts = uneven_counts(t.procs());
    const RankBytes got = hmca::testing::conf::run_alltoallv(
        [](mpi::Comm& c, int my, hw::BufView s, hw::BufView r,
           const AlltoallvLayout& l) {
          return alltoallv_direct(c, my, s, r, l);
        },
        t, counts);
    const RankBytes want =
        hmca::testing::conf::alltoallv_expected(t.procs(), counts);
    EXPECT_EQ(hmca::testing::conf::diff_results(got, want), "")
        << "alltoallv direct nodes=" << t.nodes << " ppn=" << t.ppn;
  }
}

TEST(Alltoallv, PairwiseMatchesDirect) {
  const Trial t = healthy(2, 3);
  const auto counts = uneven_counts(t.procs());
  const RankBytes got = hmca::testing::conf::run_alltoallv(
      [](mpi::Comm& c, int my, hw::BufView s, hw::BufView r,
         const AlltoallvLayout& l) {
        return alltoallv_pairwise(c, my, s, r, l);
      },
      t, counts);
  EXPECT_EQ(hmca::testing::conf::diff_results(
                got, hmca::testing::conf::alltoallv_expected(t.procs(),
                                                             counts)),
            "");
}

TEST(Alltoallv, LayoutPrefixSumsAreStandard) {
  // 2 ranks: 0 sends {10, 3}, 1 sends {0, 7}.
  const auto l = AlltoallvLayout::from_counts(2, {10, 3, 0, 7});
  EXPECT_EQ(l.send_offset(0, 0), 0u);
  EXPECT_EQ(l.send_offset(0, 1), 10u);
  EXPECT_EQ(l.send_total(0), 13u);
  EXPECT_EQ(l.recv_offset(0, 1), 0u);   // block from source 0 in rank 1
  EXPECT_EQ(l.recv_offset(1, 1), 3u);   // rank 1's own block follows
  EXPECT_EQ(l.recv_total(1), 10u);
  EXPECT_EQ(l.total(), 20u);
}

}  // namespace
}  // namespace hmca::coll
