// Planner lowering unit tests: each primitive in isolation on small
// carry-data worlds, program-order dependency semantics (RAW/WAR/WAW over
// byte ranges), fences, scratch, and the multi-chunk paths (payloads past
// the 64 KiB single-chunk ceiling split element-aligned on both the send
// and the deferred-recv side).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "coll/graph.hpp"
#include "coll/prim/planner.hpp"
#include "coll/prim/program.hpp"
#include "hw/buffer.hpp"
#include "hw/spec.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace hmca::coll::prim {
namespace {

struct RankBufs {
  std::vector<hw::Buffer> send, recv;
};

// Runs `prog` SPMD on a fresh carry-data world of `nodes` x `ppn` and
// returns every rank's buffers for inspection. `seed(r, bufs)` fills rank
// r's payloads before the run.
template <class Seed>
RankBufs run_program(int nodes, int ppn, const Program& prog, Seed seed) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  EXPECT_EQ(p, prog.nranks);

  RankBufs bufs;
  for (int r = 0; r < p; ++r) {
    bufs.send.push_back(hw::Buffer::data(prog.send_bytes));
    bufs.recv.push_back(hw::Buffer::data(prog.recv_bytes));
    seed(r, bufs);
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(Planner::run(comm, r,
                           bufs.send[static_cast<std::size_t>(r)].view(),
                           bufs.recv[static_cast<std::size_t>(r)].view(),
                           prog));
  }
  eng.run();
  return bufs;
}

std::byte pat(int r, std::size_t i) {
  return static_cast<std::byte>((r * 37 + static_cast<int>(i) * 11 + 5) & 0xff);
}

// ---- multicast ----

TEST(PrimPlanner, MulticastDeliversRootRangeToEveryPeer) {
  Program prog;
  prog.nranks = 4;
  prog.send_bytes = 32;
  prog.recv_bytes = 64;
  prog.multicast(2, {0, 1, 2, 3}, Space::kSend, {8, 16}, Space::kRecv, 40);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < 32; ++i) {
      b.send[static_cast<std::size_t>(r)].bytes()[i] = pat(r, i);
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)].bytes()[40 + i],
                pat(2, 8 + i))
          << "rank " << r << " byte " << i;
    }
  }
}

TEST(PrimPlanner, MulticastRootPeerIsALocalCopy) {
  Program prog;
  prog.nranks = 2;
  prog.recv_bytes = 32;
  prog.multicast(0, {0}, Space::kRecv, {0, 16}, Space::kRecv, 16);

  auto bufs = run_program(1, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < 16; ++i) {
      b.recv[static_cast<std::size_t>(r)].bytes()[i] = pat(r, i);
    }
  });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(bufs.recv[0].bytes()[16 + i], pat(0, i));
    // Rank 1 is not a peer: its buffer is untouched.
    EXPECT_EQ(bufs.recv[1].bytes()[16 + i], std::byte{0});
  }
}

// ---- reduce ----

TEST(PrimPlanner, ReduceCombinesContributorsIntoRootOnly) {
  Program prog;
  prog.nranks = 4;
  prog.recv_bytes = 8 * 8;
  prog.reduce(1, {0, 2, 3}, Space::kRecv, {0, 8 * 8}, mpi::Dtype::kInt64,
              mpi::ReduceOp::kSum, false);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t e = 0; e < 8; ++e) {
      b.recv[static_cast<std::size_t>(r)].as<std::int64_t>()[e] =
          (r + 1) * 100 + static_cast<std::int64_t>(e);
    }
  });
  for (std::size_t e = 0; e < 8; ++e) {
    // Root holds the sum over all four ranks; contributors keep their own.
    EXPECT_EQ(bufs.recv[1].as<std::int64_t>()[e],
              1000 + 4 * static_cast<std::int64_t>(e));
    EXPECT_EQ(bufs.recv[0].as<std::int64_t>()[e],
              100 + static_cast<std::int64_t>(e));
  }
}

TEST(PrimPlanner, OrderedFloatReduceIsExactForIntValuedData) {
  Program prog;
  prog.nranks = 4;
  prog.recv_bytes = 16 * 4;
  prog.reduce(0, {1, 2, 3}, Space::kRecv, {0, 16 * 4}, mpi::Dtype::kFloat,
              mpi::ReduceOp::kSum, /*ordered=*/true);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t e = 0; e < 16; ++e) {
      b.recv[static_cast<std::size_t>(r)].as<float>()[e] =
          static_cast<float>(r + 1);
    }
  });
  for (std::size_t e = 0; e < 16; ++e) {
    EXPECT_EQ(bufs.recv[0].as<float>()[e], 10.0f);
  }
}

// ---- fence + program-order composition: a reduce-then-broadcast is a
// two-prim allreduce ----

TEST(PrimPlanner, FenceOrdersReduceBeforeMulticastBack) {
  constexpr std::size_t kCount = 24;
  Program prog;
  prog.nranks = 4;
  prog.recv_bytes = kCount * 8;
  prog.reduce(0, {1, 2, 3}, Space::kRecv, {0, kCount * 8},
              mpi::Dtype::kInt64, mpi::ReduceOp::kSum, false);
  prog.fence();
  prog.multicast(0, {0, 1, 2, 3}, Space::kRecv, {0, kCount * 8}, Space::kRecv,
                 0);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t e = 0; e < kCount; ++e) {
      b.recv[static_cast<std::size_t>(r)].as<std::int64_t>()[e] = r + 1;
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (std::size_t e = 0; e < kCount; ++e) {
      EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)].as<std::int64_t>()[e],
                10)
          << "rank " << r << " elem " << e;
    }
  }
}

// ---- shard / unshard ----

TEST(PrimPlanner, ShardUnshardActsAsAllgather) {
  constexpr std::size_t kBlock = 48;
  Program prog;
  prog.nranks = 4;
  prog.recv_bytes = 4 * kBlock;
  std::vector<Shard> shards;
  for (int r = 0; r < 4; ++r) {
    shards.push_back({r, {static_cast<std::size_t>(r) * kBlock, kBlock}});
  }
  prog.shard(Space::kRecv, shards);
  prog.unshard(Space::kRecv, {0, 1, 2, 3});

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      b.recv[static_cast<std::size_t>(r)]
          .bytes()[static_cast<std::size_t>(r) * kBlock + i] = pat(r, i);
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (int owner = 0; owner < 4; ++owner) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)]
                      .bytes()[static_cast<std::size_t>(owner) * kBlock + i],
                  pat(owner, i))
            << "rank " << r << " owner " << owner << " byte " << i;
      }
    }
  }
}

// ---- dependency tracking without an explicit fence: a prim reading a
// range the previous prim wrote must observe the write (RAW), and one
// overwriting a read range must wait for the readers (WAR) ----

TEST(PrimPlanner, ProgramOrderRespectedAcrossConflictingRanges) {
  constexpr std::size_t kHalf = 64;
  Program prog;
  prog.nranks = 4;
  prog.recv_bytes = 2 * kHalf;
  // Prim 0: rank 0's low half lands in everyone's high half.
  prog.multicast(0, {0, 1, 2, 3}, Space::kRecv, {0, kHalf}, Space::kRecv,
                 kHalf);
  // Prim 1: rank 1's (now overwritten) high half lands in everyone's low
  // half — it must read prim 0's output, not rank 1's original bytes.
  prog.multicast(1, {0, 1, 2, 3}, Space::kRecv, {kHalf, kHalf}, Space::kRecv,
                 0);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < 2 * kHalf; ++i) {
      b.recv[static_cast<std::size_t>(r)].bytes()[i] = pat(r, i);
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < kHalf; ++i) {
      EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)].bytes()[kHalf + i],
                pat(0, i))
          << "rank " << r << " high byte " << i;
      EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)].bytes()[i], pat(0, i))
          << "rank " << r << " low byte " << i;
    }
  }
}

// ---- scratch space: lazily allocated, private per rank, usable as a relay
// hop ----

TEST(PrimPlanner, ScratchRelaysBetweenPrims) {
  Program prog;
  prog.nranks = 4;
  prog.send_bytes = 32;
  prog.recv_bytes = 32;
  prog.scratch_bytes = 32;
  prog.multicast(0, {1}, Space::kSend, {0, 32}, Space::kScratch, 0);
  prog.multicast(1, {0, 1, 2, 3}, Space::kScratch, {0, 32}, Space::kRecv, 0);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < 32; ++i) {
      b.send[static_cast<std::size_t>(r)].bytes()[i] = pat(r, i);
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)].bytes()[i], pat(0, i))
          << "rank " << r << " byte " << i;
    }
  }
}

// ---- multi-chunk paths: payloads past the single-chunk ceiling must split
// identically on the contributor and the deferred-recv side ----

TEST(PrimPlanner, MultiChunkMulticastPastSingleChunkCeiling) {
  constexpr std::size_t kLen = 256 * 1024;
  ASSERT_GT(chunks_for(kLen), 1);
  Program prog;
  prog.nranks = 2;
  prog.send_bytes = kLen;
  prog.recv_bytes = kLen;
  prog.multicast(0, {0, 1}, Space::kSend, {0, kLen}, Space::kRecv, 0);

  auto bufs = run_program(2, 1, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < kLen; ++i) {
      b.send[static_cast<std::size_t>(r)].bytes()[i] = pat(r, i);
    }
  });
  for (int r = 0; r < 2; ++r) {
    std::size_t bad = kLen;
    const auto* bytes = bufs.recv[static_cast<std::size_t>(r)].bytes();
    for (std::size_t i = 0; i < kLen; ++i) {
      if (bytes[i] != pat(0, i)) {
        bad = i;
        break;
      }
    }
    EXPECT_EQ(bad, kLen) << "rank " << r << " first bad byte";
  }
}

TEST(PrimPlanner, MultiChunkReduceSplitsByElements) {
  // 40000 int64 elements = 320000 bytes: multiple chunks whose element
  // boundaries do not land on byte-even splits of the range.
  constexpr std::size_t kCount = 40000;
  ASSERT_GT(chunks_for(kCount * 8), 1);
  Program prog;
  prog.nranks = 4;
  prog.recv_bytes = kCount * 8;
  prog.reduce(0, {1, 2, 3}, Space::kRecv, {0, kCount * 8}, mpi::Dtype::kInt64,
              mpi::ReduceOp::kSum, false);

  auto bufs = run_program(2, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t e = 0; e < kCount; ++e) {
      b.recv[static_cast<std::size_t>(r)].as<std::int64_t>()[e] =
          r + 1 + static_cast<std::int64_t>(e % 3);
    }
  });
  std::size_t bad = kCount;
  for (std::size_t e = 0; e < kCount; ++e) {
    const std::int64_t want = 10 + 4 * static_cast<std::int64_t>(e % 3);
    if (bufs.recv[0].as<std::int64_t>()[e] != want) {
      bad = e;
      break;
    }
  }
  EXPECT_EQ(bad, kCount) << "first bad element";
}

// ---- zero-length prims lower to nothing and the program still completes ----

TEST(PrimPlanner, ZeroLengthTransfersAreNoops) {
  Program prog;
  prog.nranks = 2;
  prog.recv_bytes = 16;
  prog.multicast(0, {0, 1}, Space::kRecv, {0, 0}, Space::kRecv, 8);
  prog.fence();
  prog.reduce(0, {1}, Space::kRecv, {0, 0}, mpi::Dtype::kInt64,
              mpi::ReduceOp::kSum, false);

  auto bufs = run_program(1, 2, prog, [](int r, RankBufs& b) {
    for (std::size_t i = 0; i < 16; ++i) {
      b.recv[static_cast<std::size_t>(r)].bytes()[i] = pat(r, i);
    }
  });
  for (int r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(bufs.recv[static_cast<std::size_t>(r)].bytes()[i], pat(r, i));
    }
  }
}

}  // namespace
}  // namespace hmca::coll::prim
