// Correctness of reduce-scatter and Allreduce algorithms.
#include <gtest/gtest.h>

#include <tuple>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/barrier.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::check_allreduce;

profiles::AllreduceFn fn_ring_ar() {
  return [](mpi::Comm& c, int r, hw::BufView d, std::size_t n, mpi::Dtype t,
            mpi::ReduceOp op) { return allreduce_ring(c, r, d, n, t, op); };
}
profiles::AllreduceFn fn_rd_ar() {
  return [](mpi::Comm& c, int r, hw::BufView d, std::size_t n, mpi::Dtype t,
            mpi::ReduceOp op) { return allreduce_rd(c, r, d, n, t, op); };
}

// ---- Reduce-scatter ----

sim::Task<void> rs_rank(mpi::Comm& comm, int r, hw::BufView d, std::size_t n,
                        mpi::ReduceOp op) {
  co_await reduce_scatter_ring(comm, r, d, n, mpi::Dtype::kInt64, op);
}

TEST(ReduceScatter, EachRankOwnsItsReducedChunk) {
  auto spec = hw::ClusterSpec::thor(2, 2);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = 4;
  const std::size_t count = 16;  // 4 elements per chunk

  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(count * 8);
    for (std::size_t e = 0; e < count; ++e) {
      b.as<std::int64_t>()[e] = (r + 1) * 100 + static_cast<int>(e);
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(rs_rank(comm, r, bufs[static_cast<std::size_t>(r)].view(), count,
                      mpi::ReduceOp::kSum));
  }
  eng.run();

  // Element e summed over ranks: sum_r (r+1)*100 + e = 1000 + 4e.
  for (int r = 0; r < p; ++r) {
    for (std::size_t e = static_cast<std::size_t>(r) * 4;
         e < static_cast<std::size_t>(r + 1) * 4; ++e) {
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)].as<std::int64_t>()[e],
                1000 + 4 * static_cast<std::int64_t>(e))
          << "rank " << r << " elem " << e;
    }
  }
}

TEST(ReduceScatter, RejectsIndivisibleCount) {
  EXPECT_THROW(check_allreduce(
                   [](mpi::Comm& c, int r, hw::BufView d, std::size_t n,
                      mpi::Dtype t, mpi::ReduceOp op) {
                     return reduce_scatter_ring(c, r, d, n, t, op);
                   },
                   2, 2, 7, mpi::ReduceOp::kSum),
               std::invalid_argument);
}

// ---- Allreduce sweeps ----

using ArTopo = std::tuple<int, int, std::size_t>;

class AllreduceRingSweep : public ::testing::TestWithParam<ArTopo> {};

TEST_P(AllreduceRingSweep, Sum) {
  auto [nodes, ppn, count] = GetParam();
  check_allreduce(fn_ring_ar(), nodes, ppn, count, mpi::ReduceOp::kSum);
}

TEST_P(AllreduceRingSweep, Max) {
  auto [nodes, ppn, count] = GetParam();
  check_allreduce(fn_ring_ar(), nodes, ppn, count, mpi::ReduceOp::kMax);
}

INSTANTIATE_TEST_SUITE_P(Topologies, AllreduceRingSweep,
                         ::testing::Values(ArTopo{1, 2, 8}, ArTopo{2, 2, 16},
                                           ArTopo{3, 2, 12}, ArTopo{4, 1, 64},
                                           ArTopo{2, 4, 4096},
                                           ArTopo{4, 4, 1024}));

class AllreduceRdSweep : public ::testing::TestWithParam<ArTopo> {};

TEST_P(AllreduceRdSweep, Sum) {
  auto [nodes, ppn, count] = GetParam();
  check_allreduce(fn_rd_ar(), nodes, ppn, count, mpi::ReduceOp::kSum);
}

TEST_P(AllreduceRdSweep, Min) {
  auto [nodes, ppn, count] = GetParam();
  check_allreduce(fn_rd_ar(), nodes, ppn, count, mpi::ReduceOp::kMin);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AllreduceRdSweep,
    ::testing::Values(ArTopo{1, 2, 8}, ArTopo{2, 2, 16},
                      ArTopo{3, 1, 9},   // non-p2: fold path
                      ArTopo{5, 1, 7},   // non-p2, odd count
                      ArTopo{3, 2, 33},  // non-p2 ranks, odd count
                      ArTopo{2, 4, 1024}));

TEST(AllreduceRd, ProdNonPowerOfTwo) {
  check_allreduce(fn_rd_ar(), 3, 1, 4, mpi::ReduceOp::kProd);
}

TEST(AllreduceRing, PluggableAllgatherPhase) {
  // Ring-Allreduce with a Bruck allgather phase must still reduce
  // correctly (this is the hook the MHA Allreduce uses).
  profiles::AllreduceFn fn = [](mpi::Comm& c, int r, hw::BufView d,
                                std::size_t n, mpi::Dtype t,
                                mpi::ReduceOp op) {
    AllgatherFn ag = [](mpi::Comm& cc, int rr, hw::BufView s, hw::BufView rv,
                        std::size_t m, bool ip) {
      return allgather_bruck(cc, rr, s, rv, m, ip);
    };
    return allreduce_ring(c, r, d, n, t, op, ag);
  };
  check_allreduce(fn, 2, 3, 24, mpi::ReduceOp::kSum);
}

// Bandwidth-optimality sanity: Ring-Allreduce moves ~2*(P-1)/P vector
// bytes per rank; doubling the vector should roughly double the time.
TEST(AllreduceRing, TimeScalesLinearlyInVectorSize) {
  const double t1 =
      check_allreduce(fn_ring_ar(), 2, 2, 1 << 16, mpi::ReduceOp::kSum);
  const double t2 =
      check_allreduce(fn_ring_ar(), 2, 2, 1 << 17, mpi::ReduceOp::kSum);
  EXPECT_GT(t2 / t1, 1.6);
  EXPECT_LT(t2 / t1, 2.4);
}

// ---- Dissemination barrier ----

sim::Task<void> barrier_rank(mpi::Comm& comm, int r, double arrive,
                             std::vector<double>* out) {
  co_await comm.engine().sleep(arrive);
  co_await barrier_dissemination(comm, r);
  (*out)[static_cast<std::size_t>(r)] = comm.engine().now();
}

TEST(DisseminationBarrier, NoRankLeavesBeforeLastArrives) {
  auto spec = hw::ClusterSpec::thor(3, 2);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<double> leave(static_cast<std::size_t>(p), -1);
  for (int r = 0; r < p; ++r) {
    eng.spawn(barrier_rank(comm, r, 1e-3 * r, &leave));
  }
  eng.run();
  const double last_arrival = 1e-3 * (p - 1);
  for (int r = 0; r < p; ++r) {
    EXPECT_GE(leave[static_cast<std::size_t>(r)], last_arrival);
  }
}

}  // namespace
}  // namespace hmca::coll
