// The chunk-granular dataflow engine (coll/graph.hpp): dependency order,
// FIFO determinism, lane admission, external completions, fault retry and
// the chunk policy. `ctest -L dataflow` runs this suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "coll/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"

namespace hmca::coll {
namespace {

constexpr sim::Duration kTick = 1e-6;

// Task bodies are plain lambdas returning named coroutines; the coroutine
// takes everything by value / stable reference so no capture outlives its
// frame.
sim::Task<void> log_after(sim::Engine& eng, std::vector<int>& order, int id,
                          sim::Duration d) {
  if (d > 0) co_await eng.sleep(d);
  order.push_back(id);
}

sim::Task<void> drive(GraphExecutor& exec, TaskGraph& g) {
  co_await exec.run(g);
}

sim::Task<void> drive_expecting_error(GraphExecutor& exec, TaskGraph& g,
                                      bool& threw) {
  try {
    co_await exec.run(g);
  } catch (const sim::SimError&) {
    threw = true;
  }
}

TaskGraph::Body body(sim::Engine& eng, std::vector<int>& order, int id,
                     sim::Duration d = kTick) {
  return [&eng, &order, id, d] { return log_after(eng, order, id, d); };
}

TEST(TaskGraph, DependencyEdgesOrderExecution) {
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  const int a = g.add(TaskKind::kCopy, Lane::kNone, body(eng, order, 0));
  const int b = g.add(TaskKind::kCopy, Lane::kNone, body(eng, order, 1));
  const int c = g.add(TaskKind::kCopy, Lane::kNone, body(eng, order, 2));
  g.depend(b, a);
  g.depend(c, b);
  GraphExecutor exec(eng, obs::null_sink(), 0);
  eng.spawn(drive(exec, g));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskGraph, ReadyQueueIsFifoOverCreationOrder) {
  // Four dependency-free CPU tasks on a 1-slot lane must complete in
  // creation order — this is what keeps graph execution deterministic and
  // timing-equivalent to the legacy sequential copy walk.
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add(TaskKind::kCopy, Lane::kCpu, body(eng, order, i));
  }
  GraphExecutor exec(eng, obs::null_sink(), 0);
  eng.spawn(drive(exec, g));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(exec.pipeline_depth(), 1);
}

TEST(TaskGraph, SelfEdgeAndEmptyBodyRejected) {
  TaskGraph g;
  const int a = g.add(TaskKind::kCopy, Lane::kNone, [] { return noop_task(); });
  EXPECT_THROW(g.depend(a, a), std::invalid_argument);
  EXPECT_THROW(g.add(TaskKind::kCopy, Lane::kNone, nullptr),
               std::invalid_argument);
}

TEST(GraphExecutor, ExternalDependencySatisfiedMidRun) {
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  const int t = g.add(TaskKind::kRecv, Lane::kNone, body(eng, order, 7, 0));
  g.depend_external(t);
  GraphExecutor exec(eng, obs::null_sink(), 0);

  struct Satisfier {
    static sim::Task<void> at(sim::Engine& eng, GraphExecutor& exec, int task,
                              sim::Duration when) {
      co_await eng.sleep(when);
      exec.satisfy(task);
    }
  };
  eng.spawn(drive(exec, g));
  eng.spawn(Satisfier::at(eng, exec, t, 5 * kTick));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{7}));
  EXPECT_GE(eng.now(), 5 * kTick);  // ran only after the completion arrived
}

TEST(GraphExecutor, EarlySatisfyBeforeRunIsBuffered) {
  // A completion callback can outrun run() (zero-length recv finishing at
  // post time); the executor buffers it until the graph attaches.
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  const int t = g.add(TaskKind::kRecv, Lane::kNone, body(eng, order, 3, 0));
  g.depend_external(t);
  GraphExecutor exec(eng, obs::null_sink(), 0);
  exec.satisfy(t);  // before run() starts
  eng.spawn(drive(exec, g));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{3}));
}

TEST(GraphExecutor, DependencyCycleStallsDetectably) {
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  const int a = g.add(TaskKind::kCopy, Lane::kNone, body(eng, order, 0));
  const int b = g.add(TaskKind::kCopy, Lane::kNone, body(eng, order, 1));
  g.depend(a, b);
  g.depend(b, a);
  GraphExecutor exec(eng, obs::null_sink(), 0);
  bool threw = false;
  eng.spawn(drive_expecting_error(exec, g, threw));
  eng.run();
  EXPECT_TRUE(threw);
  EXPECT_TRUE(order.empty());
}

TEST(GraphExecutor, TransientFaultRetriesWithBackoff) {
  sim::Engine eng;
  trace::Tracer tracer;
  obs::Metrics metrics;
  obs::CollectSink sink(&tracer, &metrics);
  std::vector<int> order;
  TaskGraph g;
  g.add(TaskKind::kSend, Lane::kNic, body(eng, order, 0));
  ExecOptions opts;
  opts.fail_injector = [](int, int attempt) { return attempt < 2; };
  GraphExecutor exec(eng, sink, 0, opts);
  eng.spawn(drive(exec, g));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(exec.retries(), 2u);
  EXPECT_EQ(metrics.counter_value("coll.task_retries"), 2.0);
  // Backoff doubles: the success attempt starts no earlier than base + 2x.
  EXPECT_GE(eng.now(), 3 * ExecOptions{}.retry_backoff);
}

TEST(GraphExecutor, ExhaustedRetriesSurfaceTheError) {
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  g.add(TaskKind::kSend, Lane::kNic, body(eng, order, 0));
  ExecOptions opts;
  opts.fail_injector = [](int, int) { return true; };
  GraphExecutor exec(eng, obs::null_sink(), 0, opts);
  bool threw = false;
  eng.spawn(drive_expecting_error(exec, g, threw));
  eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(exec.retries(),
            static_cast<std::uint64_t>(ExecOptions{}.max_retries));
  EXPECT_TRUE(order.empty());
}

TEST(GraphExecutor, WrappedTasksNeverRetry) {
  // A wrapped task is an entire legacy collective: re-running one on a
  // single rank would desync the SPMD rendezvous, so its faults are
  // terminal (legacy semantics), with zero retries.
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  g.add(TaskKind::kWrapped, Lane::kNone, body(eng, order, 0));
  ExecOptions opts;
  opts.fail_injector = [](int, int) { return true; };
  GraphExecutor exec(eng, obs::null_sink(), 0, opts);
  bool threw = false;
  eng.spawn(drive_expecting_error(exec, g, threw));
  eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(exec.retries(), 0u);
}

TEST(GraphExecutor, PipelineDepthReflectsConcurrency) {
  sim::Engine eng;
  trace::Tracer tracer;
  obs::Metrics metrics;
  obs::CollectSink sink(&tracer, &metrics);
  std::vector<int> order;
  TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    g.add(TaskKind::kSend, Lane::kNone, body(eng, order, i));
  }
  GraphExecutor exec(eng, sink, 0);
  eng.spawn(drive(exec, g));
  eng.run();
  EXPECT_EQ(exec.pipeline_depth(), 3);
  const auto* h = metrics.histogram("coll.pipeline_depth");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->max, 3.0);
  // All three ran concurrently: wall time is one tick, not three.
  EXPECT_LT(eng.now(), 2 * kTick);
}

TEST(GraphExecutor, NicLanesAdmitPerRail) {
  // nic_slots=1 with two rails: tasks on the same rail serialize, tasks on
  // different rails run concurrently.
  sim::Engine eng;
  std::vector<int> order;
  TaskGraph g;
  g.add(TaskKind::kSend, Lane::kNic, body(eng, order, 0),
        TaskOpts{"", "", -1, 0, 0, -1});
  g.add(TaskKind::kSend, Lane::kNic, body(eng, order, 1),
        TaskOpts{"", "", -1, 0, 0, -1});
  g.add(TaskKind::kSend, Lane::kNic, body(eng, order, 2),
        TaskOpts{"", "", -1, 0, 1, -1});
  ExecOptions opts;
  opts.nic_slots = 1;
  GraphExecutor exec(eng, obs::null_sink(), 0, opts);
  eng.spawn(drive(exec, g));
  eng.run();
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(exec.pipeline_depth(), 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2 * kTick);  // rail 0 serializes its two tasks
}

TEST(GraphExecutor, TaskSpansCarryKindAndChunkTags) {
  sim::Engine eng;
  trace::Tracer tracer;
  obs::CollectSink sink(&tracer);
  std::vector<int> order;
  TaskGraph g;
  g.add(TaskKind::kSend, Lane::kNone, body(eng, order, 0),
        TaskOpts{"s2", "phase2", 5, 4096, -1, 3});
  GraphExecutor exec(eng, sink, 0);
  eng.spawn(drive(exec, g));
  eng.run();
  bool task_span = false, phase_span = false;
  for (const auto& s : tracer.spans()) {
    if (s.kind == trace::Kind::kTask) {
      task_span = true;
      EXPECT_EQ(s.label, "task:send:s2#c5");
      EXPECT_EQ(s.bytes, 4096u);
      EXPECT_EQ(s.peer, 3);
    }
    if (s.kind == trace::Kind::kPhase && s.label == "phase2") {
      phase_span = true;
    }
  }
  EXPECT_TRUE(task_span);
  EXPECT_TRUE(phase_span);
}

TEST(GraphExecutor, IdenticalGraphsRunDeterministically) {
  const auto run_once = [] {
    sim::Engine eng;
    std::vector<int> order;
    TaskGraph g;
    std::vector<int> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(g.add(i % 2 == 0 ? TaskKind::kCopy : TaskKind::kSend,
                          i % 2 == 0 ? Lane::kCpu : Lane::kNic,
                          body(eng, order, i, (i + 1) * kTick)));
    }
    g.depend(ids[4], ids[1]);
    g.depend(ids[5], ids[0]);
    GraphExecutor exec(eng, obs::null_sink(), 0);
    eng.spawn(drive(exec, g));
    eng.run();
    return std::make_pair(eng.now(), order);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(RunAsGraph, WrapsLegacyBodyWithTaskSpan) {
  sim::Engine eng;
  trace::Tracer tracer;
  obs::CollectSink sink(&tracer);
  std::vector<int> order;
  const auto run = [&] {
    return run_as_graph(eng, sink, 4, "legacy",
                        [&eng, &order] { return log_after(eng, order, 9, 0); });
  };
  eng.spawn(run());
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{9}));
  bool found = false;
  for (const auto& s : tracer.spans()) {
    if (s.kind == trace::Kind::kTask && s.label == "task:wrapped:legacy") {
      found = true;
      EXPECT_EQ(s.rank, 4);
    }
  }
  EXPECT_TRUE(found);
}

// ---- RangeProducers ----

TEST(RangeProducers, CoveringIntersectsHalfOpenRanges) {
  RangeProducers p;
  p.add(0, 100, 1);
  p.add(100, 100, 2);
  p.add(0, 0, 3);  // empty ranges never produce
  EXPECT_EQ(p.covering(0, 100), (std::vector<int>{1}));
  EXPECT_EQ(p.covering(50, 100), (std::vector<int>{1, 2}));
  EXPECT_EQ(p.covering(100, 1), (std::vector<int>{2}));
  EXPECT_TRUE(p.covering(200, 50).empty());
}

// ---- Chunk policy ----

class ChunkPolicy : public ::testing::Test {
 protected:
  void TearDown() override { set_chunk_bytes_override(-1); }
};

TEST_F(ChunkPolicy, AutoKeepsSmallTransfersWhole) {
  set_chunk_bytes_override(0);  // force auto regardless of environment
  EXPECT_EQ(chunks_for(0), 1);
  EXPECT_EQ(chunks_for(1), 1);
  EXPECT_EQ(chunks_for(64 * 1024), 1);
  EXPECT_GE(chunks_for(64 * 1024 + 1), 2);
  EXPECT_EQ(chunks_for(16u << 20), kMaxChunks);  // large transfers cap out
}

TEST_F(ChunkPolicy, OverrideSetsGranularityAndCaps) {
  set_chunk_bytes_override(1024);
  EXPECT_EQ(chunks_for(4096), 4);
  EXPECT_EQ(chunks_for(4097), 5);
  EXPECT_EQ(chunks_for(1u << 20), kMaxChunks);  // capped, never unbounded
  set_chunk_bytes_override(-1);                 // back to env / auto
}

TEST_F(ChunkPolicy, ChunkRangesTileTheTransfer) {
  for (const std::size_t bytes : {std::size_t{1}, std::size_t{4097},
                                  std::size_t{65536}, std::size_t{100001}}) {
    const int n = chunks_for(bytes);
    std::size_t expect_off = 0;
    for (int c = 0; c < n; ++c) {
      const auto [off, len] = chunk_range(bytes, n, c);
      EXPECT_EQ(off, expect_off) << "bytes=" << bytes << " chunk=" << c;
      expect_off += len;
    }
    EXPECT_EQ(expect_off, bytes) << "bytes=" << bytes;
  }
}

TEST_F(ChunkPolicy, EnvValueParsesAndRejectsGarbage) {
  set_chunk_bytes_override(-1);
  ASSERT_EQ(setenv("HMCA_CHUNK_BYTES", "2048", 1), 0);
  EXPECT_EQ(configured_chunk_bytes(), 2048u);
  EXPECT_EQ(chunks_for(8192), 4);
  ASSERT_EQ(setenv("HMCA_CHUNK_BYTES", "lots", 1), 0);
  EXPECT_THROW(configured_chunk_bytes(), std::invalid_argument);
  ASSERT_EQ(unsetenv("HMCA_CHUNK_BYTES"), 0);
  EXPECT_EQ(configured_chunk_bytes(), 0u);
}

}  // namespace
}  // namespace hmca::coll
