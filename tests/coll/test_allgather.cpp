// Correctness of the flat Allgather algorithms across topologies, message
// sizes and in-place operation, plus algorithm-specific structural checks.
#include <gtest/gtest.h>

#include <tuple>

#include "coll/allgather.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::check_allgather;

coll::AllgatherFn fn_ring() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return allgather_ring(c, r, s, rv, m, ip); };
}
coll::AllgatherFn fn_rd() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return allgather_rd(c, r, s, rv, m, ip); };
}
coll::AllgatherFn fn_bruck() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return allgather_bruck(c, r, s, rv, m, ip); };
}
coll::AllgatherFn fn_direct() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return allgather_direct(c, r, s, rv, m, ip); };
}
coll::AllgatherFn fn_multi_leader(int groups) {
  return [groups](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                  std::size_t m, bool ip) {
    return allgather_multi_leader(c, r, s, rv, m, ip, groups);
  };
}

TEST(Helpers, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(47), 5);
  EXPECT_EQ(log2_floor(64), 6);
}

// ---- Parameterized correctness sweep: (nodes, ppn, msg) ----

using Topo = std::tuple<int, int, std::size_t>;

class AllgatherSweep : public ::testing::TestWithParam<Topo> {};

TEST_P(AllgatherSweep, Ring) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(fn_ring(), nodes, ppn, msg);
}

TEST_P(AllgatherSweep, Bruck) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(fn_bruck(), nodes, ppn, msg);
}

TEST_P(AllgatherSweep, Direct) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(fn_direct(), nodes, ppn, msg);
}

TEST_P(AllgatherSweep, RdOrBruck) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) { return allgather_rd_or_bruck(c, r, s, rv, m, ip); },
      nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AllgatherSweep,
    ::testing::Values(Topo{1, 1, 64}, Topo{1, 2, 128}, Topo{1, 4, 1024},
                      Topo{1, 7, 96},                    // odd PPN
                      Topo{2, 1, 256}, Topo{2, 2, 4096}, // small inter
                      Topo{3, 2, 512},                   // non-p2 nodes
                      Topo{4, 4, 64}, Topo{4, 4, 65536}, // rendezvous sizes
                      Topo{5, 3, 1000},                  // odd everything
                      Topo{8, 2, 2048}));

// RD only on power-of-two communicator sizes.
class AllgatherRdSweep : public ::testing::TestWithParam<Topo> {};

TEST_P(AllgatherRdSweep, Rd) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(fn_rd(), nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwo, AllgatherRdSweep,
                         ::testing::Values(Topo{1, 2, 64}, Topo{1, 8, 512},
                                           Topo{2, 2, 4096}, Topo{4, 4, 1024},
                                           Topo{2, 4, 65536}, Topo{8, 1, 256}));

TEST(AllgatherRd, RejectsNonPowerOfTwo) {
  EXPECT_THROW(check_allgather(fn_rd(), 3, 1, 64), std::invalid_argument);
}

// ---- In-place operation ----

TEST(AllgatherInPlace, Ring) { check_allgather(fn_ring(), 2, 3, 512, true); }
TEST(AllgatherInPlace, Rd) { check_allgather(fn_rd(), 2, 2, 512, true); }
TEST(AllgatherInPlace, Bruck) { check_allgather(fn_bruck(), 3, 2, 512, true); }
TEST(AllgatherInPlace, Direct) {
  check_allgather(fn_direct(), 2, 2, 512, true);
}

// ---- Argument validation ----

TEST(AllgatherArgs, BadSizesThrow) {
  auto spec = hw::ClusterSpec::thor(1, 2);
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto send = hw::Buffer::data(64);
  auto recv = hw::Buffer::data(100);  // not 2*64
  auto t = [&]() -> sim::Task<void> {
    co_await allgather_ring(comm, 0, send.view(), recv.view(), 64, false);
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

// ---- Multi-leader two-level baseline ----

class MultiLeaderSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, std::size_t>> {
};

TEST_P(MultiLeaderSweep, GathersCorrectly) {
  auto [nodes, ppn, groups, msg] = GetParam();
  check_allgather(fn_multi_leader(groups), nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MultiLeaderSweep,
    ::testing::Values(std::tuple{2, 4, 2, 1024}, std::tuple{2, 4, 1, 512},
                      std::tuple{4, 2, 2, 2048}, std::tuple{3, 6, 3, 256},
                      std::tuple{2, 8, 4, 65536}, std::tuple{1, 4, 2, 512}));

TEST(MultiLeader, InPlace) {
  check_allgather(fn_multi_leader(2), 2, 4, 1024, true);
}

TEST(MultiLeader, RejectsIndivisibleGroups) {
  EXPECT_THROW(check_allgather(fn_multi_leader(3), 2, 4, 64),
               std::invalid_argument);
}

TEST(MultiLeader, RejectsNonPositiveGroups) {
  EXPECT_THROW(check_allgather(fn_multi_leader(0), 2, 4, 64),
               std::invalid_argument);
  EXPECT_THROW(check_allgather(fn_multi_leader(-2), 2, 4, 64),
               std::invalid_argument);
}

TEST(MultiLeader, RejectsMoreGroupsThanPpn) {
  // 8 groups cannot be carved out of 4 processes per node.
  EXPECT_THROW(check_allgather(fn_multi_leader(8), 2, 4, 64),
               std::invalid_argument);
}

TEST(MultiLeader, IndivisibleErrorNamesTheShape) {
  try {
    check_allgather(fn_multi_leader(3), 2, 4, 64);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ppn (4)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("groups (3)"), std::string::npos) << msg;
  }
}

// ---- Node-aware (locality-aware Bruck) Allgather ----

coll::AllgatherFn fn_node_aware_bruck() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return allgather_node_aware_bruck(c, r, s, rv, m, ip); };
}

class NodeAwareBruckSweep : public ::testing::TestWithParam<Topo> {};

TEST_P(NodeAwareBruckSweep, GathersCorrectly) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(fn_node_aware_bruck(), nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NodeAwareBruckSweep,
    ::testing::Values(Topo{1, 1, 64}, Topo{1, 4, 1024},   // degenerate intra
                      Topo{2, 1, 256},                    // leaders only
                      Topo{2, 4, 4096}, Topo{3, 2, 512},  // non-p2 nodes
                      Topo{5, 3, 1000},                   // odd everything
                      Topo{4, 4, 65536},                  // rendezvous sizes
                      Topo{8, 2, 2048}));

TEST(NodeAwareBruck, InPlace) {
  check_allgather(fn_node_aware_bruck(), 3, 4, 512, true);
}

TEST(NodeAwareBruck, RejectsSubsetCommunicator) {
  // Needs the node-major world communicator: run it on the leader comm.
  auto spec = hw::ClusterSpec::thor(2, 2);
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& lcomm = world.leader_comm();
  auto send = hw::Buffer::data(64);
  auto recv = hw::Buffer::data(64 * 2);
  auto t = [&]() -> sim::Task<void> {
    co_await allgather_node_aware_bruck(lcomm, 0, send.view(), recv.view(), 64,
                                        false);
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

// ---- Structural/performance sanity ----

TEST(AllgatherShape, RingSlowerThanRdForSmallManyRanks) {
  // alpha-dominated regime: RD's log(N) steps beat Ring's N-1.
  const double t_ring = check_allgather(fn_ring(), 8, 1, 64);
  const double t_rd = check_allgather(fn_rd(), 8, 1, 64);
  EXPECT_LT(t_rd, t_ring);
}

TEST(AllgatherShape, FlatRingBottleneckedByIntraNode) {
  // Fig. 2's lesson: with PPN > 1, the flat ring's intra-node hops are the
  // slow links. The same total data moved with 1 PPN over more nodes is
  // faster per byte... we check the direct symptom: a flat ring with 2
  // nodes x 2 PPN is slower than 2x the 2-node 1-PPN ring time would
  // suggest from pure scaling (extra intra-node serialization).
  const double t_22 = check_allgather(fn_ring(), 2, 2, 262144);
  const double t_21 = check_allgather(fn_ring(), 2, 1, 262144);
  EXPECT_GT(t_22, 1.5 * t_21);
}

}  // namespace
}  // namespace hmca::coll
