// The collective-algorithm registry: bootstrap contents, lookup/error
// behavior, applicability predicates, cost hooks, and running registered
// entries end-to-end through the data-mode checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "coll/registry.hpp"
#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "model/params.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::check_allgather;
using hmca::testing::check_allreduce;

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(Registry, FlatAlgorithmsAreBootstrapped) {
  auto& reg = Registry::instance();
  for (const char* name : {"ring", "rd", "bruck", "direct", "rd_or_bruck",
                           "multi_leader2", "multi_leader1",
                           "node_aware_bruck"}) {
    EXPECT_NE(reg.find_allgather(name), nullptr) << name;
  }
  EXPECT_NE(reg.find_allreduce("rd"), nullptr);
  EXPECT_NE(reg.find_allreduce("ring"), nullptr);
  EXPECT_NE(reg.find_bcast("binomial"), nullptr);
  EXPECT_NE(reg.find_allgatherv("ring"), nullptr);
}

TEST(Registry, CoreAlgorithmsRegisterIdempotently) {
  core::register_core_algorithms();
  core::register_core_algorithms();  // second call must not throw (duplicates)
  auto& reg = Registry::instance();
  const auto names = reg.allgather_names();
  for (const char* name : {"mha_intra", "mha_inter_rd", "mha_inter_ring",
                           "mha_inter", "single_leader", "numa3"}) {
    EXPECT_TRUE(contains(names, name)) << name;
  }
  EXPECT_NE(reg.find_allreduce("ring_mha"), nullptr);
  EXPECT_NE(reg.find_bcast("mha"), nullptr);
  EXPECT_NE(reg.find_allgatherv("mha"), nullptr);
}

TEST(Registry, UnknownNameThrowsListingCandidates) {
  auto& reg = Registry::instance();
  EXPECT_EQ(reg.find_allgather("no_such_algo"), nullptr);
  try {
    reg.get_allgather("no_such_algo");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_algo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ring"), std::string::npos) << msg;  // lists known names
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto& reg = Registry::instance();
  AllgatherAlgo dup;
  dup.name = "ring";
  dup.summary = "dup";
  dup.fn = reg.get_allgather("bruck").fn;
  try {
    reg.add_allgather(std::move(dup));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, RejectsUnnamedOrEmptyEntries) {
  auto& reg = Registry::instance();
  AllgatherAlgo unnamed;
  unnamed.fn = reg.get_allgather("ring").fn;
  EXPECT_THROW(reg.add_allgather(std::move(unnamed)), std::invalid_argument);
  AllgatherAlgo no_fn;
  no_fn.name = "ghost";
  EXPECT_THROW(reg.add_allgather(std::move(no_fn)), std::invalid_argument);
}

TEST(Registry, CommShapeOfWorldAndSubComms) {
  auto spec = hw::ClusterSpec::thor(3, 4);
  sim::Engine eng;
  mpi::World world(eng, spec);

  const auto ws = CommShape::of(world.comm_world());
  EXPECT_EQ(ws.comm_size, 12);
  EXPECT_EQ(ws.nodes, 3);
  EXPECT_EQ(ws.ppn, 4);
  EXPECT_TRUE(ws.world);

  const auto ns = CommShape::of(world.node_comm(1));
  EXPECT_EQ(ns.comm_size, 4);
  EXPECT_EQ(ns.nodes, 1);
  EXPECT_FALSE(ns.world);

  const auto ls = CommShape::of(world.leader_comm());
  EXPECT_EQ(ls.comm_size, 3);
  EXPECT_EQ(ls.nodes, 3);
  EXPECT_FALSE(ls.world);
}

TEST(Registry, ApplicabilityPredicatesEncodeLayoutRequirements) {
  core::register_core_algorithms();
  auto& reg = Registry::instance();

  CommShape world_2x4;
  world_2x4.comm_size = 8;
  world_2x4.nodes = 2;
  world_2x4.ppn = 4;
  world_2x4.world = true;

  CommShape subset = world_2x4;
  subset.world = false;

  CommShape odd_nodes = world_2x4;
  odd_nodes.comm_size = 12;
  odd_nodes.nodes = 3;

  const auto& rd = reg.get_allgather("rd");
  EXPECT_TRUE(rd.applies(world_2x4, 64));  // 8 ranks: power of two
  CommShape nine = subset;
  nine.comm_size = 9;
  EXPECT_FALSE(rd.applies(nine, 64));

  const auto& ml2 = reg.get_allgather("multi_leader2");
  EXPECT_TRUE(ml2.applies(world_2x4, 64));
  EXPECT_FALSE(ml2.applies(subset, 64));  // needs node-major world

  const auto& inter_rd = reg.get_allgather("mha_inter_rd");
  EXPECT_TRUE(inter_rd.applies(world_2x4, 64));
  EXPECT_FALSE(inter_rd.applies(odd_nodes, 64));  // non-p2 node count

  const auto& intra = reg.get_allgather("mha_intra");
  EXPECT_FALSE(intra.applies(world_2x4, 64));  // multi-node

  const auto& ar_ring = reg.get_allreduce("ring");
  EXPECT_TRUE(ar_ring.applies(world_2x4, 16, 8));   // 16 % 8 == 0
  EXPECT_FALSE(ar_ring.applies(world_2x4, 15, 8));  // indivisible count
}

TEST(Registry, CostHooksRankRdUnderRingForSmallMessages) {
  core::register_core_algorithms();
  auto& reg = Registry::instance();
  const auto params =
      model::ModelParams::from_spec(hw::ClusterSpec::thor(8, 1));
  CommShape s;
  s.comm_size = 8;
  s.nodes = 8;
  s.ppn = 1;
  s.world = true;
  const auto& rd = reg.get_allgather("rd");
  const auto& ring = reg.get_allgather("ring");
  ASSERT_TRUE(static_cast<bool>(rd.cost));
  ASSERT_TRUE(static_cast<bool>(ring.cost));
  // alpha-dominated: log2(8)=3 steps beat 7 ring steps.
  EXPECT_LT(rd.cost(params, s, 64), ring.cost(params, s, 64));
}

// Registered entries must be runnable as-is (the fn field is the same
// callable the selector and --algo hand out).
TEST(Registry, RegisteredEntriesRunEndToEnd) {
  core::register_core_algorithms();
  auto& reg = Registry::instance();
  check_allgather(reg.get_allgather("node_aware_bruck").fn, 2, 4, 1024);
  check_allgather(reg.get_allgather("multi_leader2").fn, 2, 4, 512);
  check_allgather(reg.get_allgather("mha_inter").fn, 2, 4, 4096);
  check_allreduce(reg.get_allreduce("ring_mha").fn, 2, 4, 64,
                  mpi::ReduceOp::kSum);
}

}  // namespace
}  // namespace hmca::coll
