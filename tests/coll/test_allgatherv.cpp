// Allgatherv: variable-block-size gathers — flat algorithms and the
// hierarchical MHA variant, including zero-size contributions and skewed
// layouts.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "coll/allgatherv.hpp"
#include "core/mha_allgatherv.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::block_byte;

using AgvFn = std::function<sim::Task<void>(mpi::Comm&, int, hw::BufView,
                                            hw::BufView, const VarLayout&,
                                            bool)>;

sim::Task<void> agv_rank(mpi::Comm& comm, const AgvFn& fn, int r,
                         hw::BufView send, hw::BufView recv,
                         const VarLayout& layout, bool in_place) {
  co_await fn(comm, r, send, recv, layout, in_place);
}

void check_agv(const AgvFn& fn, int nodes, int ppn,
               std::vector<std::size_t> counts, bool in_place = false) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
  const auto layout = VarLayout::from_counts(counts);

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto recv = hw::Buffer::data(layout.total);
    hw::Buffer send = hw::Buffer::data(in_place ? 0 : layout.count(r));
    for (std::size_t i = 0; i < layout.count(r); ++i) {
      if (in_place) {
        recv.bytes()[layout.offset(r) + i] = block_byte(r, i);
      } else {
        send.bytes()[i] = block_byte(r, i);
      }
    }
    sends.push_back(std::move(send));
    recvs.push_back(std::move(recv));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(agv_rank(comm, fn, r, sends[static_cast<std::size_t>(r)].view(),
                       recvs[static_cast<std::size_t>(r)].view(), layout,
                       in_place));
  }
  eng.run();
  for (int r = 0; r < p; ++r) {
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < layout.count(src); ++i) {
        ASSERT_EQ(recvs[static_cast<std::size_t>(r)]
                      .bytes()[layout.offset(src) + i],
                  block_byte(src, i))
            << "rank " << r << " block " << src << " byte " << i;
      }
    }
  }
}

AgvFn fn_ring() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
            const VarLayout& l, bool ip) {
    return allgatherv_ring(c, r, s, rv, l, ip);
  };
}
AgvFn fn_direct() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
            const VarLayout& l, bool ip) {
    return allgatherv_direct(c, r, s, rv, l, ip);
  };
}
AgvFn fn_mha() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
            const VarLayout& l, bool ip) {
    return core::allgatherv_mha(c, r, s, rv, l, ip);
  };
}

TEST(VarLayout, PrefixOffsets) {
  const auto l = VarLayout::from_counts({10, 0, 5, 3});
  EXPECT_EQ(l.total, 18u);
  EXPECT_EQ(l.offset(0), 0u);
  EXPECT_EQ(l.offset(1), 10u);
  EXPECT_EQ(l.offset(2), 10u);
  EXPECT_EQ(l.offset(3), 15u);
  EXPECT_THROW(VarLayout::from_counts({}), std::invalid_argument);
}

TEST(AllgathervRing, SkewedBlocks) {
  check_agv(fn_ring(), 2, 2, {100, 7, 4096, 1});
}

TEST(AllgathervRing, ZeroSizeContributions) {
  check_agv(fn_ring(), 1, 4, {0, 64, 0, 128});
}

TEST(AllgathervRing, InPlace) {
  check_agv(fn_ring(), 2, 2, {32, 64, 96, 128}, true);
}

TEST(AllgathervDirect, SkewedBlocks) {
  check_agv(fn_direct(), 2, 3, {1, 2000, 3, 40000, 5, 600});
}

TEST(AllgathervDirect, ZeroSizeContributions) {
  check_agv(fn_direct(), 1, 3, {0, 0, 50});
}

TEST(AllgathervMha, SkewedAcrossNodes) {
  check_agv(fn_mha(), 2, 4, {100, 7, 4096, 1, 64, 0, 2048, 9});
}

TEST(AllgathervMha, LargeIrregularBlocks) {
  check_agv(fn_mha(), 3, 2, {1u << 16, 3, 1u << 18, 0, 1234, 1u << 15});
}

TEST(AllgathervMha, SingleNodeIntra) {
  check_agv(fn_mha(), 1, 6, {64, 1u << 17, 0, 300, 1u << 16, 12});
}

TEST(AllgathervMha, InPlace) {
  check_agv(fn_mha(), 2, 2, {512, 1024, 2048, 4096}, true);
}

TEST(AllgathervMha, PpnOne) {
  check_agv(fn_mha(), 4, 1, {100, 200, 300, 400});
}

TEST(Allgatherv, ArgValidation) {
  auto spec = hw::ClusterSpec::thor(1, 2);
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto layout = VarLayout::from_counts({8, 8});
  auto send = hw::Buffer::data(8);
  auto recv = hw::Buffer::data(10);  // wrong total
  auto t = [&]() -> sim::Task<void> {
    co_await allgatherv_ring(comm, 0, send.view(), recv.view(), layout, false);
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

TEST(AllgathervPerf, MhaBeatsFlatRingForSkewedInterNode) {
  // Same structural win as the equal-block case.
  auto spec = hw::ClusterSpec::thor(4, 8);
  spec.carry_data = false;
  std::vector<std::size_t> counts;
  for (int r = 0; r < 32; ++r) {
    counts.push_back(static_cast<std::size_t>(1024 + 511 * (r % 5)));
  }
  const auto layout = VarLayout::from_counts(counts);
  auto measure = [&](const AgvFn& fn) {
    sim::Engine eng;
    mpi::World world(eng, spec);
    auto& comm = world.comm_world();
    std::vector<hw::Buffer> sends, recvs;
    for (int r = 0; r < 32; ++r) {
      sends.push_back(hw::Buffer::phantom(layout.count(r)));
      recvs.push_back(hw::Buffer::phantom(layout.total));
    }
    for (int r = 0; r < 32; ++r) {
      eng.spawn(agv_rank(comm, fn, r, sends[static_cast<std::size_t>(r)].view(),
                         recvs[static_cast<std::size_t>(r)].view(), layout,
                         false));
    }
    eng.run();
    return eng.now();
  };
  EXPECT_LT(measure(fn_mha()), measure(fn_ring()));
}

}  // namespace
}  // namespace hmca::coll
