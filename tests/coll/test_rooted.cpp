// Rooted collectives: broadcast, reduce, gather, scatter, alltoall.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "coll/alltoall.hpp"
#include "coll/bcast.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::block_byte;

using BcastFn = std::function<sim::Task<void>(mpi::Comm&, int, int,
                                              hw::BufView)>;

sim::Task<void> bcast_rank(mpi::Comm& comm, const BcastFn& fn, int r, int root,
                           hw::BufView data) {
  co_await fn(comm, r, root, data);
}

void check_bcast(const BcastFn& fn, int nodes, int ppn, std::size_t bytes,
                 int root) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(bytes);
    if (r == root) {
      for (std::size_t i = 0; i < bytes; ++i) b.bytes()[i] = block_byte(root, i);
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(bcast_rank(comm, fn, r, root,
                         bufs[static_cast<std::size_t>(r)].view()));
  }
  eng.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < bytes; ++i) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)].bytes()[i],
                block_byte(root, i))
          << "rank " << r << " byte " << i << " root " << root;
    }
  }
}

BcastFn fn_binomial() {
  return [](mpi::Comm& c, int r, int root, hw::BufView d) {
    return bcast_binomial(c, r, root, d);
  };
}
BcastFn fn_scatter_ag() {
  return [](mpi::Comm& c, int r, int root, hw::BufView d) {
    return bcast_scatter_allgather(c, r, root, d);
  };
}

using BTopo = std::tuple<int, int, std::size_t, int>;
class BcastSweep : public ::testing::TestWithParam<BTopo> {};

TEST_P(BcastSweep, Binomial) {
  auto [nodes, ppn, bytes, root] = GetParam();
  check_bcast(fn_binomial(), nodes, ppn, bytes, root);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, BcastSweep,
    ::testing::Values(BTopo{1, 2, 64, 0}, BTopo{1, 5, 777, 3},
                      BTopo{2, 2, 4096, 0}, BTopo{2, 2, 4096, 3},
                      BTopo{3, 2, 1024, 5}, BTopo{4, 4, 65536, 7},
                      BTopo{2, 1, 100, 1}));

class BcastSaSweep : public ::testing::TestWithParam<BTopo> {};

TEST_P(BcastSaSweep, ScatterAllgather) {
  auto [nodes, ppn, bytes, root] = GetParam();
  check_bcast(fn_scatter_ag(), nodes, ppn, bytes, root);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, BcastSaSweep,
    ::testing::Values(BTopo{1, 4, 4096, 0},    // divisible by 4
                      BTopo{1, 4, 4096, 2},    // rotated root
                      BTopo{2, 2, 65536, 1},
                      BTopo{3, 2, 6144, 4},    // non-p2 comm size
                      BTopo{4, 2, 32768, 0}));

TEST(BcastScatterAllgather, RejectsIndivisibleSize) {
  EXPECT_THROW(check_bcast(fn_scatter_ag(), 1, 4, 10, 0),
               std::invalid_argument);
}

TEST(BcastShape, ScatterAllgatherBeatsBinomialForLargeMessages) {
  // van de Geijn: ~2x less root bandwidth for big payloads.
  auto measure = [](const BcastFn& fn, std::size_t bytes) {
    auto spec = hw::ClusterSpec::thor(8, 1);
    spec.carry_data = false;
    sim::Engine eng;
    mpi::World world(eng, spec);
    auto& comm = world.comm_world();
    std::vector<hw::Buffer> bufs;
    for (int r = 0; r < 8; ++r) bufs.push_back(hw::Buffer::phantom(bytes));
    for (int r = 0; r < 8; ++r) {
      eng.spawn(bcast_rank(comm, fn, r, 0,
                           bufs[static_cast<std::size_t>(r)].view()));
    }
    eng.run();
    return eng.now();
  };
  const std::size_t big = 8u << 20;
  EXPECT_LT(measure(fn_scatter_ag(), big), measure(fn_binomial(), big));
  // And binomial wins for tiny payloads (fewer rounds than 2(N-1) steps).
  EXPECT_LT(measure(fn_binomial(), 64), measure(fn_scatter_ag(), 64));
}

// ---- Reduce ----

sim::Task<void> reduce_rank(mpi::Comm& comm, int r, int root, hw::BufView d,
                            std::size_t count, mpi::ReduceOp op) {
  co_await reduce_binomial(comm, r, root, d, count, mpi::Dtype::kInt64, op);
}

void check_reduce(int nodes, int ppn, std::size_t count, int root,
                  mpi::ReduceOp op) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  auto init = [](int r, std::size_t e) {
    return static_cast<std::int64_t>((r + 2) * ((e % 5) + 1));
  };
  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(count * 8);
    for (std::size_t e = 0; e < count; ++e) b.as<std::int64_t>()[e] = init(r, e);
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(reduce_rank(comm, r, root,
                          bufs[static_cast<std::size_t>(r)].view(), count, op));
  }
  eng.run();
  for (std::size_t e = 0; e < count; ++e) {
    std::int64_t want = init(0, e);
    for (int r = 1; r < p; ++r) {
      want = op == mpi::ReduceOp::kSum ? want + init(r, e)
                                       : std::max(want, init(r, e));
    }
    ASSERT_EQ(bufs[static_cast<std::size_t>(root)].as<std::int64_t>()[e], want)
        << "elem " << e;
  }
}

TEST(ReduceBinomial, SumAcrossTopologies) {
  check_reduce(1, 4, 16, 0, mpi::ReduceOp::kSum);
  check_reduce(2, 3, 9, 2, mpi::ReduceOp::kSum);
  check_reduce(3, 2, 7, 5, mpi::ReduceOp::kSum);
}

TEST(ReduceBinomial, MaxNonZeroRoot) {
  check_reduce(2, 2, 12, 3, mpi::ReduceOp::kMax);
}

// ---- Gather / Scatter ----

TEST(GatherScatter, RoundTripRestoresBlocks) {
  auto spec = hw::ClusterSpec::thor(2, 3);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t msg = 256;
  const int root = 2;

  std::vector<hw::Buffer> sends, outs;
  auto gathered = hw::Buffer::data(msg * static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(msg);
    for (std::size_t i = 0; i < msg; ++i) b.bytes()[i] = block_byte(r, i);
    sends.push_back(std::move(b));
    outs.push_back(hw::Buffer::data(msg));
  }
  auto rank = [&](int r) -> sim::Task<void> {
    co_await gather_linear(comm, r, root, sends[static_cast<std::size_t>(r)].view(),
                           r == root ? gathered.view() : hw::BufView{}, msg);
    co_await scatter_linear(comm, r, root,
                            r == root ? gathered.view() : hw::BufView{},
                            outs[static_cast<std::size_t>(r)].view(), msg);
  };
  for (int r = 0; r < p; ++r) eng.spawn(rank(r));
  eng.run();

  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < msg; ++i) {
      ASSERT_EQ(outs[static_cast<std::size_t>(r)].bytes()[i], block_byte(r, i))
          << "rank " << r << " byte " << i;
    }
  }
}

TEST(GatherScatter, SizeValidation) {
  auto spec = hw::ClusterSpec::thor(1, 2);
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto small = hw::Buffer::data(8);
  auto t = [&]() -> sim::Task<void> {
    co_await gather_linear(comm, 0, 0, small.view(), small.view(), 8);
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);  // recv != msg * n at root
}

// ---- Alltoall ----

void check_alltoall(int nodes, int ppn, std::size_t msg) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();

  // Block (r -> dst) content depends on both endpoints.
  auto cell = [](int src, int dst, std::size_t i) {
    return static_cast<std::byte>((src * 37 + dst * 11 + i * 3) & 0xff);
  };
  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto s = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      for (std::size_t i = 0; i < msg; ++i) {
        s.bytes()[static_cast<std::size_t>(d) * msg + i] = cell(r, d, i);
      }
    }
    sends.push_back(std::move(s));
    recvs.push_back(hw::Buffer::data(msg * static_cast<std::size_t>(p)));
  }
  auto rank = [&](int r) -> sim::Task<void> {
    co_await alltoall_pairwise(comm, r, sends[static_cast<std::size_t>(r)].view(),
                               recvs[static_cast<std::size_t>(r)].view(), msg);
  };
  for (int r = 0; r < p; ++r) eng.spawn(rank(r));
  eng.run();

  for (int r = 0; r < p; ++r) {
    for (int s = 0; s < p; ++s) {
      for (std::size_t i = 0; i < msg; ++i) {
        ASSERT_EQ(recvs[static_cast<std::size_t>(r)]
                      .bytes()[static_cast<std::size_t>(s) * msg + i],
                  cell(s, r, i))
            << "rank " << r << " from " << s << " byte " << i;
      }
    }
  }
}

TEST(Alltoall, PowerOfTwoXorSchedule) { check_alltoall(2, 2, 128); }
TEST(Alltoall, NonPowerOfTwoShiftSchedule) { check_alltoall(3, 2, 96); }
TEST(Alltoall, SingleNode) { check_alltoall(1, 5, 64); }
TEST(Alltoall, LargeBlocks) { check_alltoall(2, 2, 65536); }

}  // namespace
}  // namespace hmca::coll
