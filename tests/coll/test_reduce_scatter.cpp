// Reduce-scatter correctness: the planner-backed ring (any count, uneven
// tails) and recursive halving (power-of-two worlds, divisible counts),
// plus the core::mha_reduce_scatter dispatcher. The fault matrix lives in
// test_conformance.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "coll/graph.hpp"
#include "coll/prim/program.hpp"
#include "coll/reduce_scatter.hpp"
#include "core/mha.hpp"
#include "testing/conformance.hpp"

namespace hmca::coll {
namespace {

using hmca::testing::conf::RankBytes;
using hmca::testing::conf::Trial;

Trial healthy(int nodes, int ppn, int hcas = 1) {
  Trial t;
  t.nodes = nodes;
  t.ppn = ppn;
  t.hcas = hcas;
  return t;
}

ReduceScatterFn fn_ring() {
  return [](mpi::Comm& c, int my, hw::BufView d, std::size_t n, mpi::Dtype t,
            mpi::ReduceOp op) {
    return reduce_scatter_ring_any(c, my, d, n, t, op);
  };
}
ReduceScatterFn fn_rh() {
  return [](mpi::Comm& c, int my, hw::BufView d, std::size_t n, mpi::Dtype t,
            mpi::ReduceOp op) {
    return reduce_scatter_halving(c, my, d, n, t, op);
  };
}
ReduceScatterFn fn_mha() {
  return [](mpi::Comm& c, int my, hw::BufView d, std::size_t n, mpi::Dtype t,
            mpi::ReduceOp op) {
    return core::mha_reduce_scatter(c, my, d, n, t, op);
  };
}

// Every rank's owned element range `chunk_range(count, p, r)` must hold the
// exact reduction; other positions are unspecified.
void expect_owned_chunks_ok(const ReduceScatterFn& fn, const char* name,
                            const Trial& t, std::size_t count,
                            mpi::Dtype dtype, mpi::ReduceOp op) {
  const RankBytes got =
      hmca::testing::conf::run_reduce_scatter(fn, t, count, dtype, op);
  const int p = t.procs();
  for (int r = 0; r < p; ++r) {
    const auto [off, len] = chunk_range(count, p, r);
    for (std::size_t e = off; e < off + len; ++e) {
      ASSERT_EQ(hmca::testing::conf::elem_value(
                    got[static_cast<std::size_t>(r)], e, dtype),
                hmca::testing::conf::reduce_expected(p, e, op))
          << name << " nodes=" << t.nodes << " ppn=" << t.ppn
          << " count=" << count << " rank " << r << " elem " << e;
    }
  }
}

TEST(ReduceScatterRing, ExactAcrossShapesAndUnevenCounts) {
  for (const Trial& t : {healthy(1, 4), healthy(2, 4), healthy(4, 2, 2),
                         healthy(3, 3)}) {
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{7}, std::size_t{96},
          std::size_t{1000}}) {
      expect_owned_chunks_ok(fn_ring(), "ring", t, count,
                             mpi::Dtype::kInt64, mpi::ReduceOp::kSum);
    }
  }
}

TEST(ReduceScatterRing, AllOpsAndDtypes) {
  const Trial t = healthy(2, 3);
  for (const auto op : {mpi::ReduceOp::kSum, mpi::ReduceOp::kProd,
                        mpi::ReduceOp::kMax, mpi::ReduceOp::kMin}) {
    for (const auto dtype : {mpi::Dtype::kInt32, mpi::Dtype::kInt64,
                             mpi::Dtype::kFloat, mpi::Dtype::kDouble}) {
      expect_owned_chunks_ok(fn_ring(), "ring", t, 100, dtype, op);
    }
  }
}

TEST(ReduceScatterRing, CountBelowWorldLeavesZeroLengthTails) {
  // 3 elements over 6 ranks: the trailing ranks own nothing and must still
  // terminate.
  expect_owned_chunks_ok(fn_ring(), "ring", healthy(2, 3), 3,
                         mpi::Dtype::kInt32, mpi::ReduceOp::kSum);
}

TEST(ReduceScatterHalving, ExactOnPowerOfTwoWorlds) {
  for (const Trial& t : {healthy(1, 4), healthy(2, 4), healthy(4, 2, 2),
                         healthy(2, 1)}) {
    const int p = t.procs();
    for (const std::size_t per_rank : {std::size_t{1}, std::size_t{25}}) {
      expect_owned_chunks_ok(fn_rh(), "rh", t,
                             per_rank * static_cast<std::size_t>(p),
                             mpi::Dtype::kInt64, mpi::ReduceOp::kSum);
    }
  }
}

TEST(ReduceScatterHalving, FloatUsesOrderedCombines) {
  // The rh builder declares ordered reduces, so float is accepted and
  // exact for int-valued inputs.
  expect_owned_chunks_ok(fn_rh(), "rh", healthy(2, 4), 64,
                         mpi::Dtype::kFloat, mpi::ReduceOp::kSum);
}

TEST(ReduceScatterHalving, RejectsNonPowerOfTwoWorld) {
  EXPECT_THROW(hmca::testing::conf::run_reduce_scatter(
                   fn_rh(), healthy(2, 3), 96, mpi::Dtype::kInt64,
                   mpi::ReduceOp::kSum),
               prim::PlanError);
}

TEST(ReduceScatterHalving, RejectsIndivisibleCount) {
  EXPECT_THROW(hmca::testing::conf::run_reduce_scatter(
                   fn_rh(), healthy(2, 2), 7, mpi::Dtype::kInt64,
                   mpi::ReduceOp::kSum),
               prim::PlanError);
}

TEST(ReduceScatter, MhaDispatcherCorrectOnBothSidesOfThreshold) {
  // Small divisible vectors route to recursive halving, large ones to the
  // ring; both must produce the exact owned chunks.
  const Trial t = healthy(2, 4, 2);
  expect_owned_chunks_ok(fn_mha(), "mha", t, 64, mpi::Dtype::kInt64,
                         mpi::ReduceOp::kSum);
  expect_owned_chunks_ok(fn_mha(), "mha", t, 16384, mpi::Dtype::kInt64,
                         mpi::ReduceOp::kSum);
}

TEST(ReduceScatter, MhaDispatcherHandlesIrregularShapes) {
  // Non-power-of-two world with an indivisible count: only the ring
  // applies and the dispatcher must pick it.
  expect_owned_chunks_ok(fn_mha(), "mha", healthy(3, 3), 1000,
                         mpi::Dtype::kDouble, mpi::ReduceOp::kSum);
}

TEST(ReduceScatter, RejectsMismatchedBufferSize) {
  Trial t = healthy(1, 2);
  sim::Engine eng;
  auto spec = hmca::testing::conf::spec_of(t);
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto buf = hw::Buffer::data(12);  // 3 int32 elements, count says 4
  eng.spawn([](mpi::Comm& c, hw::BufView d) -> sim::Task<void> {
    co_await reduce_scatter_ring_any(c, 0, d, 4, mpi::Dtype::kInt32,
                                     mpi::ReduceOp::kSum);
  }(comm, buf.view()));
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

}  // namespace
}  // namespace hmca::coll
