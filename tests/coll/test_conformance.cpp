// Randomized differential conformance suite (tests/testing/conformance.hpp).
//
// Every registry algorithm runs on sampled shapes / sizes under every fault
// category and is byte-compared against the naive gather+bcast reference.
// Seeds: HMCA_CONFORMANCE_SEED or a fixed default; every failure prints the
// replay command.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "coll/graph.hpp"
#include "core/selector.hpp"
#include "profiles/profiles.hpp"
#include "sim/fault.hpp"
#include "testing/conformance.hpp"

namespace hmca {
namespace {

using testing::conf::RankBytes;
using testing::conf::Trial;
using Category = sim::FaultPlan::Category;

class Conformance : public ::testing::Test {
 protected:
  void SetUp() override { core::register_core_algorithms(); }
};

// Message-size menu: zero bytes, odd non-power-of-two sizes, an eager-sized,
// a rendezvous-sized and a stripe-sized message.
constexpr std::size_t kMsgSizes[] = {0, 1, 3, 100, 1000, 4096, 20000, 65536};
constexpr int kTrialsPerCategory = 4;

std::uint64_t category_salt(Category c) {
  return 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(c) + 1);
}

/// Independent RNG stream per sub-suite, all derived from the one seed.
std::uint64_t rng_seed_for(const char* what, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char* p = what; *p; ++p) {
    h = h * 131 + static_cast<unsigned char>(*p);
  }
  return h;
}

/// Sample one trial of the given fault category. Shapes stay small (<= 16
/// ranks) so a full category sweep finishes in seconds.
Trial sample_trial(sim::Rng& rng, std::uint64_t seed, int index, Category cat) {
  Trial t;
  t.seed = seed;
  t.index = index;
  t.nodes = static_cast<int>(rng.uniform_int(1, 4));
  t.ppn = static_cast<int>(rng.uniform_int(1, 4));
  t.hcas = static_cast<int>(rng.uniform_int(1, 3));
  // Sockets need not divide ppn: imbalanced spans (ppn=3, sockets=2) are
  // deliberately in the pool so the n-level hierarchy's uneven block
  // distribution is conformance-checked under every fault category.
  t.sockets = static_cast<int>(rng.uniform_int(1, std::min(t.ppn, 3)));
  t.msg = kMsgSizes[rng.next_below(std::size(kMsgSizes))];
  t.in_place = rng.next_below(2) == 0;
  t.fault_plan =
      sim::FaultPlan::random(rng, t.nodes, t.hcas, cat).to_string();
  return t;
}

/// Run every applicable registry allgather on the trial and compare against
/// the shared reference result.
void check_allgather_trial(const Trial& t) {
  SCOPED_TRACE(t.context());
  const RankBytes want = testing::conf::reference_allgather(t);
  for (const auto& algo : coll::Registry::instance().allgathers()) {
    if (algo.applies && !algo.applies(testing::conf::shape_of(t), t.msg)) {
      continue;
    }
    const RankBytes got = testing::conf::run_allgather(algo.fn, t);
    EXPECT_EQ(testing::conf::diff_results(got, want), "")
        << "allgather '" << algo.name << "' diverged from the reference\n"
        << testing::conf::failure_stats(algo.fn, t);
  }
}

void run_category(Category cat) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(seed ^ category_salt(cat));
  for (int i = 0; i < kTrialsPerCategory; ++i) {
    check_allgather_trial(sample_trial(rng, seed, i, cat));
  }
}

TEST_F(Conformance, AllgatherHealthy) { run_category(Category::kNone); }
TEST_F(Conformance, AllgatherUnderKills) { run_category(Category::kKill); }
TEST_F(Conformance, AllgatherUnderDegrades) { run_category(Category::kDegrade); }
TEST_F(Conformance, AllgatherUnderTransients) {
  run_category(Category::kTransient);
}
TEST_F(Conformance, AllgatherUnderMixedFaults) {
  run_category(Category::kMixed);
}

// ---- Allreduce: exact arithmetic in every dtype, all fault categories ----

TEST_F(Conformance, AllreduceAllDtypes) {
  const std::uint64_t seed = testing::conf::suite_seed();
  const mpi::Dtype dtypes[] = {mpi::Dtype::kInt32, mpi::Dtype::kInt64,
                               mpi::Dtype::kFloat, mpi::Dtype::kDouble};
  const mpi::ReduceOp ops[] = {mpi::ReduceOp::kSum, mpi::ReduceOp::kProd,
                               mpi::ReduceOp::kMax, mpi::ReduceOp::kMin};
  const std::size_t counts[] = {1, 5, 96, 1000};
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  sim::Rng rng(seed ^ 0xa11dedu);
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    const mpi::Dtype dtype =
        dtypes[rng.next_below(std::size(dtypes))];
    const mpi::ReduceOp op = ops[rng.next_below(std::size(ops))];
    const std::size_t count = counts[rng.next_below(std::size(counts))];
    SCOPED_TRACE(t.context());
    SCOPED_TRACE("dtype=" + std::to_string(static_cast<int>(dtype)) +
                 " op=" + std::to_string(static_cast<int>(op)) +
                 " count=" + std::to_string(count));
    for (const auto& algo : coll::Registry::instance().allreduces()) {
      if (algo.applies && !algo.applies(testing::conf::shape_of(t), count,
                                        mpi::dtype_size(dtype))) {
        continue;
      }
      const RankBytes got =
          testing::conf::run_allreduce(algo.fn, t, count, dtype, op);
      for (int r = 0; r < t.procs(); ++r) {
        const auto& bytes = got[static_cast<std::size_t>(r)];
        for (std::size_t e = 0; e < count; ++e) {
          const std::int64_t want =
              testing::conf::reduce_expected(t.procs(), e, op);
          std::int64_t have = 0;
          switch (dtype) {
            case mpi::Dtype::kByte:
              have = std::to_integer<std::int64_t>(bytes[e]);
              break;
            case mpi::Dtype::kInt32:
              have = *reinterpret_cast<const std::int32_t*>(&bytes[e * 4]);
              break;
            case mpi::Dtype::kInt64:
              have = *reinterpret_cast<const std::int64_t*>(&bytes[e * 8]);
              break;
            case mpi::Dtype::kFloat:
              have = static_cast<std::int64_t>(
                  *reinterpret_cast<const float*>(&bytes[e * 4]));
              break;
            case mpi::Dtype::kDouble:
              have = static_cast<std::int64_t>(
                  *reinterpret_cast<const double*>(&bytes[e * 8]));
              break;
          }
          ASSERT_EQ(have, want)
              << "allreduce '" << algo.name << "' rank " << r << " elem " << e;
        }
      }
    }
  }
}

// ---- Bcast / Allgatherv under faults: expected-bytes checks ----

TEST_F(Conformance, BcastAllCategories) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("bcast", seed));
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    SCOPED_TRACE(t.context());
    for (const auto& algo : coll::Registry::instance().bcasts()) {
      if (algo.applies && !algo.applies(testing::conf::shape_of(t), t.msg)) {
        continue;
      }
      const RankBytes got = testing::conf::run_bcast(algo.fn, t);
      for (int r = 0; r < t.procs(); ++r) {
        const auto& bytes = got[static_cast<std::size_t>(r)];
        std::size_t bad = t.msg;
        for (std::size_t i = 0; i < t.msg; ++i) {
          if (bytes[i] != testing::conf::content_byte(0, i)) {
            bad = i;
            break;
          }
        }
        ASSERT_EQ(bad, t.msg)
            << "bcast '" << algo.name << "' rank " << r << " first bad byte";
      }
    }
  }
}

TEST_F(Conformance, AllgathervAllCategories) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("allgatherv", seed));
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    SCOPED_TRACE(t.context());
    // Irregular counts including empty contributions and one large block.
    std::vector<std::size_t> counts(static_cast<std::size_t>(t.procs()));
    for (auto& c : counts) {
      const std::size_t menu[] = {0, 1, 17, 300, 5000, 40000};
      c = menu[rng.next_below(std::size(menu))];
    }
    const auto layout = coll::VarLayout::from_counts(counts);
    const auto want = testing::conf::allgatherv_expected(layout);
    for (const auto& algo : coll::Registry::instance().allgathervs()) {
      if (algo.applies &&
          !algo.applies(testing::conf::shape_of(t), layout.total)) {
        continue;
      }
      const RankBytes got =
          testing::conf::run_allgatherv(algo.fn, t, counts);
      for (int r = 0; r < t.procs(); ++r) {
        ASSERT_EQ(got[static_cast<std::size_t>(r)], want)
            << "allgatherv '" << algo.name << "' rank " << r;
      }
    }
  }
}

// ---- Alltoall / Alltoallv / Reduce-scatter / composed allreduce: the
// compositional planner's collectives under every fault category ----

TEST_F(Conformance, AlltoallAllCategories) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("alltoall", seed));
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  // Per-pair blocks stay modest: the exchange moves p^2 of them.
  const std::size_t msgs[] = {0, 1, 100, 1000, 4096};
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    const std::size_t msg = msgs[rng.next_below(std::size(msgs))];
    SCOPED_TRACE(t.context());
    SCOPED_TRACE("msg=" + std::to_string(msg));
    const RankBytes want = testing::conf::alltoall_expected(t.procs(), msg);
    for (const auto& algo : coll::Registry::instance().alltoalls()) {
      if (algo.applies && !algo.applies(testing::conf::shape_of(t), msg)) {
        continue;
      }
      const RankBytes got = testing::conf::run_alltoall(algo.fn, t, msg);
      EXPECT_EQ(testing::conf::diff_results(got, want), "")
          << "alltoall '" << algo.name << "' diverged from the reference";
    }
  }
}

TEST_F(Conformance, AlltoallvAllCategoriesUnevenCounts) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("alltoallv", seed));
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    SCOPED_TRACE(t.context());
    const int p = t.procs();
    // Irregular pairwise matrix: empty blocks and one rendezvous-sized
    // outlier are both in the menu, so uneven v-layouts are the norm.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p * p));
    for (auto& c : counts) {
      const std::size_t menu[] = {0, 1, 17, 300, 2000, 20000};
      c = menu[rng.next_below(std::size(menu))];
    }
    const RankBytes want = testing::conf::alltoallv_expected(p, counts);
    const auto layout = coll::AlltoallvLayout::from_counts(p, counts);
    for (const auto& algo : coll::Registry::instance().alltoallvs()) {
      if (algo.applies &&
          !algo.applies(testing::conf::shape_of(t), layout.total())) {
        continue;
      }
      const RankBytes got = testing::conf::run_alltoallv(algo.fn, t, counts);
      EXPECT_EQ(testing::conf::diff_results(got, want), "")
          << "alltoallv '" << algo.name << "' diverged from the reference";
    }
  }
}

TEST_F(Conformance, ReduceScatterAllCategories) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("reduce_scatter", seed));
  const mpi::Dtype dtypes[] = {mpi::Dtype::kInt32, mpi::Dtype::kInt64,
                               mpi::Dtype::kFloat, mpi::Dtype::kDouble};
  const mpi::ReduceOp ops[] = {mpi::ReduceOp::kSum, mpi::ReduceOp::kProd,
                               mpi::ReduceOp::kMax, mpi::ReduceOp::kMin};
  // Indivisible counts are deliberately in the menu: the ring must handle
  // uneven tails (the rh predicate filters itself out).
  const std::size_t counts[] = {1, 7, 96, 1000, 16384};
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    const mpi::Dtype dtype = dtypes[rng.next_below(std::size(dtypes))];
    const mpi::ReduceOp op = ops[rng.next_below(std::size(ops))];
    const std::size_t count = counts[rng.next_below(std::size(counts))];
    SCOPED_TRACE(t.context());
    SCOPED_TRACE("dtype=" + std::to_string(static_cast<int>(dtype)) +
                 " op=" + std::to_string(static_cast<int>(op)) +
                 " count=" + std::to_string(count));
    const int p = t.procs();
    for (const auto& algo : coll::Registry::instance().reduce_scatters()) {
      if (algo.applies && !algo.applies(testing::conf::shape_of(t), count,
                                        mpi::dtype_size(dtype))) {
        continue;
      }
      const RankBytes got =
          testing::conf::run_reduce_scatter(algo.fn, t, count, dtype, op);
      for (int r = 0; r < p; ++r) {
        const auto [off, len] = coll::chunk_range(count, p, r);
        for (std::size_t e = off; e < off + len; ++e) {
          ASSERT_EQ(testing::conf::elem_value(
                        got[static_cast<std::size_t>(r)], e, dtype),
                    testing::conf::reduce_expected(p, e, op))
              << "reduce_scatter '" << algo.name << "' rank " << r
              << " owned elem " << e;
        }
      }
    }
  }
}

// The composed allreduce (registry "rs_ag": planner reduce-up +
// reduce-scatter/allgather across leaders + multicast-down) is also swept
// by AllreduceAllDtypes with every other allreduce; this pins it explicitly
// across every fault category so a registry reshuffle can't silently drop
// its coverage.
TEST_F(Conformance, ComposedAllreduceAllCategories) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("rs_ag", seed));
  const auto& algo = coll::Registry::instance().get_allreduce("rs_ag");
  const Category cats[] = {Category::kNone, Category::kKill,
                           Category::kDegrade, Category::kTransient,
                           Category::kMixed};
  const std::size_t counts[] = {1, 5, 96, 1000};
  int index = 0;
  for (const Category cat : cats) {
    Trial t = sample_trial(rng, seed, index++, cat);
    const std::size_t count = counts[rng.next_below(std::size(counts))];
    SCOPED_TRACE(t.context());
    SCOPED_TRACE("count=" + std::to_string(count));
    if (algo.applies && !algo.applies(testing::conf::shape_of(t), count,
                                      mpi::dtype_size(mpi::Dtype::kInt64))) {
      continue;
    }
    const RankBytes got = testing::conf::run_allreduce(
        algo.fn, t, count, mpi::Dtype::kInt64, mpi::ReduceOp::kSum);
    for (int r = 0; r < t.procs(); ++r) {
      for (std::size_t e = 0; e < count; ++e) {
        ASSERT_EQ(testing::conf::elem_value(got[static_cast<std::size_t>(r)],
                                            e, mpi::Dtype::kInt64),
                  testing::conf::reduce_expected(t.procs(), e,
                                                 mpi::ReduceOp::kSum))
            << "rs_ag rank " << r << " elem " << e;
      }
    }
  }
}

// ---- Property: any kill plan leaving >= 1 healthy rail per node keeps the
// MHA allgather byte-identical to the fault-free run ----

TEST_F(Conformance, SurvivableKillPlansPreserveOutput) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("property", seed));
  for (int i = 0; i < 6; ++i) {
    Trial t = sample_trial(rng, seed, i, Category::kKill);
    t.hcas = static_cast<int>(rng.uniform_int(2, 3));  // room to lose rails
    t.fault_plan =
        sim::FaultPlan::random(rng, t.nodes, t.hcas, Category::kKill)
            .to_string();
    SCOPED_TRACE(t.context());

    Trial healthy = t;
    healthy.fault_plan.clear();
    const RankBytes want =
        testing::conf::run_allgather(profiles::mha().allgather, healthy);
    const RankBytes got =
        testing::conf::run_allgather(profiles::mha().allgather, t);
    EXPECT_EQ(testing::conf::diff_results(got, want), "")
        << "MHA output changed under a survivable kill plan\n"
        << testing::conf::failure_stats(profiles::mha().allgather, t);
  }
}

// ---- Acceptance: kill one of two HCAs mid-run; every registered allgather
// still completes correctly ----

TEST_F(Conformance, KillOneOfTwoHcasMidRun) {
  Trial t;
  t.seed = testing::conf::suite_seed();
  t.nodes = 2;
  t.ppn = 4;
  t.hcas = 2;
  t.msg = 65536;  // big enough that the kill lands mid-collective
  t.fault_plan = "kill:node=*,hca=1,t=2e-5";
  check_allgather_trial(t);
}

// ---- Dataflow acceptance: kill / flake a rail mid-pipeline while the
// transfers are split into many chunk tasks, so the executor's per-task
// retry and the net layer's restriping both get exercised ----

class ChunkOverrideGuard {
 public:
  explicit ChunkOverrideGuard(long long bytes) {
    coll::set_chunk_bytes_override(bytes);
  }
  ~ChunkOverrideGuard() { coll::set_chunk_bytes_override(-1); }
};

TEST_F(Conformance, KillMidPipelineWithChunkedTasks) {
  ChunkOverrideGuard chunks(8192);  // 65536 bytes -> 8 chunk tasks per hop
  Trial t;
  t.seed = testing::conf::suite_seed();
  t.nodes = 2;
  t.ppn = 4;
  t.hcas = 2;
  t.msg = 65536;
  t.fault_plan = "kill:node=*,hca=1,t=2e-5";  // lands mid-pipeline
  check_allgather_trial(t);
}

TEST_F(Conformance, FlakyRailRetriesChunkTasks) {
  ChunkOverrideGuard chunks(4096);
  Trial t;
  t.seed = testing::conf::suite_seed();
  t.nodes = 2;
  t.ppn = 2;
  t.hcas = 2;
  t.msg = 40000;
  t.fault_plan = "flaky:rate=0.25,burst=2,seed=7";
  check_allgather_trial(t);
}

TEST_F(Conformance, ChunkOverrideSweepStaysCorrect) {
  const std::uint64_t seed = testing::conf::suite_seed();
  sim::Rng rng(rng_seed_for("chunks", seed));
  int index = 0;
  for (const long long chunk_bytes : {1LL, 1000LL, 4096LL}) {
    ChunkOverrideGuard chunks(chunk_bytes);
    Trial t = sample_trial(rng, seed, index++, Category::kNone);
    t.msg = 20000;  // odd size: chunk ranges must tile exactly
    SCOPED_TRACE("chunk_bytes=" + std::to_string(chunk_bytes));
    check_allgather_trial(t);
  }
}

// ---- Determinism: same plan + same seed => byte-identical traces ----

TEST_F(Conformance, SamePlanSameSeedSameTrace) {
  Trial t;
  t.seed = testing::conf::suite_seed();
  t.nodes = 2;
  t.ppn = 2;
  t.hcas = 2;
  t.msg = 40000;
  t.fault_plan =
      "kill:node=0,hca=1,t=1e-5;degrade:node=1,hca=0,t=0,bw=0.5,lat=2;"
      "flaky:rate=0.2,burst=2,seed=42";

  auto one_run = [&](std::string* csv) {
    trace::Tracer tracer;
    const RankBytes out =
        testing::conf::run_allgather(profiles::mha().allgather, t, &tracer);
    std::ostringstream os;
    tracer.write_csv(os);
    *csv = os.str();
    return out;
  };

  std::string csv_a, csv_b;
  const RankBytes out_a = one_run(&csv_a);
  const RankBytes out_b = one_run(&csv_b);
  EXPECT_EQ(testing::conf::diff_results(out_a, out_b), "");
  EXPECT_EQ(csv_a, csv_b) << "fault-injected trace is not deterministic";
  EXPECT_NE(csv_a.find("fault:"), std::string::npos)
      << "expected fault spans in the trace";
}

}  // namespace
}  // namespace hmca
