// Tracer span bookkeeping, busy/overlap accounting, renderers.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hpp"

namespace hmca::trace {
namespace {

TEST(Tracer, OpenCloseRecordsSpan) {
  Tracer t;
  auto h = t.open(3, Kind::kNicXfer, 1.0, 7, 4096, "x");
  h.close(2.5);
  ASSERT_EQ(t.spans().size(), 1u);
  const auto& s = t.spans()[0];
  EXPECT_EQ(s.rank, 3);
  EXPECT_EQ(s.peer, 7);
  EXPECT_EQ(s.bytes, 4096u);
  EXPECT_DOUBLE_EQ(s.t0, 1.0);
  EXPECT_DOUBLE_EQ(s.t1, 2.5);
}

TEST(Tracer, BusyTimeMergesOverlappingSpans) {
  Tracer t;
  t.record({0, Kind::kCmaCopy, 0.0, 2.0, -1, 0, ""});
  t.record({0, Kind::kCmaCopy, 1.0, 3.0, -1, 0, ""});
  t.record({0, Kind::kCmaCopy, 5.0, 6.0, -1, 0, ""});
  EXPECT_DOUBLE_EQ(t.busy_time(0, Kind::kCmaCopy), 4.0);
  EXPECT_DOUBLE_EQ(t.busy_time(0, Kind::kNicXfer), 0.0);
  EXPECT_DOUBLE_EQ(t.busy_time(1, Kind::kCmaCopy), 0.0);
}

TEST(Tracer, OverlapTimeBetweenKinds) {
  Tracer t;
  t.record({0, Kind::kNicXfer, 0.0, 4.0, -1, 0, ""});
  t.record({1, Kind::kCopyOut, 2.0, 6.0, -1, 0, ""});
  EXPECT_DOUBLE_EQ(t.overlap_time(0, Kind::kNicXfer, 1, Kind::kCopyOut), 2.0);
  EXPECT_DOUBLE_EQ(t.overlap_time(1, Kind::kCopyOut, 0, Kind::kNicXfer), 2.0);
  EXPECT_DOUBLE_EQ(t.overlap_time(0, Kind::kNicXfer, 1, Kind::kCopyIn), 0.0);
}

TEST(Tracer, AsciiRendererShowsAllRanks) {
  Tracer t;
  t.record({0, Kind::kNicXfer, 0.0, 1.0, 1, 64, ""});
  t.record({1, Kind::kWait, 0.0, 1.0, 0, 0, ""});
  std::ostringstream os;
  t.render_ascii(os, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("rank 0"), std::string::npos);
  EXPECT_NE(out.find("rank 1"), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Tracer, EmptyTraceRenders) {
  Tracer t;
  std::ostringstream os;
  t.render_ascii(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(Tracer, CsvHasHeaderAndRows) {
  Tracer t;
  t.record({2, Kind::kCopyIn, 1e-6, 3e-6, -1, 128, "chunk0"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("rank,kind,t0_us"), std::string::npos);
  EXPECT_NE(out.find("2,copy_in,1,3,-1,128,chunk0"), std::string::npos);
}

TEST(Tracer, GlyphsAreDistinct) {
  EXPECT_NE(kind_glyph(Kind::kIsend), kind_glyph(Kind::kIrecv));
  EXPECT_NE(kind_glyph(Kind::kCopyIn), kind_glyph(Kind::kCopyOut));
  EXPECT_NE(kind_glyph(Kind::kNicXfer), kind_glyph(Kind::kCmaCopy));
}

TEST(Tracer, ClearResets) {
  Tracer t;
  t.record({0, Kind::kWait, 0, 1, -1, 0, ""});
  t.clear();
  EXPECT_TRUE(t.spans().empty());
}

}  // namespace
}  // namespace hmca::trace
