// Application kernels: MatVec correctness + scaling shape, DL trainer
// behaviour.
#include <gtest/gtest.h>

#include "apps/dl_training.hpp"
#include "apps/matvec.hpp"
#include "profiles/profiles.hpp"

namespace hmca::apps {
namespace {

coll::AllgatherFn fn_ring() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return coll::allgather_ring(c, r, s, rv, m, ip); };
}

TEST(MatVec, DistributedResultMatchesSerial) {
  EXPECT_EQ(verify_matvec(hw::ClusterSpec::thor(2, 2), fn_ring(), 16, 64), 0);
  EXPECT_EQ(verify_matvec(hw::ClusterSpec::thor(1, 4),
                          profiles::mha().allgather, 8, 32),
            0);
  EXPECT_EQ(verify_matvec(hw::ClusterSpec::thor(2, 2),
                          profiles::mha().allgather, 12, 48),
            0);
  EXPECT_EQ(verify_matvec(hw::ClusterSpec::thor(2, 2),
                          profiles::mvapich().allgather, 16, 64),
            0);
}

TEST(MatVec, RejectsIndivisibleProblem) {
  MatVecConfig cfg;
  cfg.rows = 10;
  cfg.cols = 64;
  EXPECT_THROW(run_matvec(hw::ClusterSpec::thor(2, 2), fn_ring(), cfg),
               std::invalid_argument);
}

TEST(MatVec, ReportsPositiveGflops) {
  MatVecConfig cfg;
  cfg.rows = 64;
  cfg.cols = 4096;
  cfg.iterations = 3;
  const auto res = run_matvec(hw::ClusterSpec::thor(2, 2), fn_ring(), cfg);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.gflops, 0.0);
}

TEST(MatVec, MhaBeatsFlatRingInCommBoundRegime) {
  // Fig. 16's communication-bound setting: long matrix, many ranks/node.
  MatVecConfig cfg;
  cfg.rows = 1024;
  cfg.cols = 32768;
  cfg.iterations = 2;
  const auto spec = hw::ClusterSpec::thor(4, 8);
  const auto flat = run_matvec(spec, profiles::hpcx().allgather, cfg);
  const auto mha = run_matvec(spec, profiles::mha().allgather, cfg);
  EXPECT_GT(mha.gflops, flat.gflops);
}

TEST(MatVec, WeakScalingIncreasesAggregateGflops) {
  MatVecConfig small;
  small.rows = 256;
  small.cols = 8192;
  small.iterations = 2;
  MatVecConfig big = small;
  big.cols = 16384;
  const auto r_small =
      run_matvec(hw::ClusterSpec::thor(2, 4), profiles::mha().allgather, small);
  const auto r_big =
      run_matvec(hw::ClusterSpec::thor(4, 4), profiles::mha().allgather, big);
  EXPECT_GT(r_big.gflops, r_small.gflops);
}

TEST(DlTraining, ModelPresetsMatchPaper) {
  EXPECT_EQ(resnet50().parameters, 25'600'000u);
  EXPECT_EQ(resnet101().parameters, 44'700'000u);
  EXPECT_EQ(resnet152().parameters, 60'400'000u);
}

TEST(DlTraining, ThroughputScalesWithProcesses) {
  DlConfig cfg;
  cfg.steps = 2;
  const auto r4 =
      run_training(hw::ClusterSpec::thor(2, 2), profiles::mha().allreduce, cfg);
  const auto r8 =
      run_training(hw::ClusterSpec::thor(4, 2), profiles::mha().allreduce, cfg);
  EXPECT_GT(r8.imgs_per_sec, 1.5 * r4.imgs_per_sec);
  EXPECT_LT(r8.epoch_seconds, r4.epoch_seconds);
}

TEST(DlTraining, CommFractionIsMeaningful) {
  DlConfig cfg;
  cfg.steps = 2;
  const auto res =
      run_training(hw::ClusterSpec::thor(2, 4), profiles::mha().allreduce, cfg);
  EXPECT_GT(res.comm_fraction, 0.0);
  EXPECT_LT(res.comm_fraction, 0.9);
}

TEST(DlTraining, MhaAllreduceBeatsBaselineAtScale) {
  // Fig. 17's effect: same compute, faster allreduce -> more images/s.
  // 8 nodes x 16 PPN with 8 MB fusion buckets puts the allreduces in the
  // medium-size band where the MHA Allgather phase wins (at very large
  // vectors both designs are bound by node memory bandwidth and tie).
  DlConfig cfg;
  cfg.steps = 2;
  cfg.bucket_bytes = 1u << 20;  // finer fusion keeps chunks in the win band
  const auto spec = hw::ClusterSpec::thor(8, 16);
  const auto base = run_training(spec, profiles::mvapich().allreduce, cfg);
  const auto ours = run_training(spec, profiles::mha().allreduce, cfg);
  EXPECT_GT(ours.imgs_per_sec, base.imgs_per_sec);
}

TEST(DlTraining, LargerModelsSpendMoreTimeInComm) {
  DlConfig small, large;
  small.steps = large.steps = 2;
  small.model = resnet50();
  large.model = resnet152();
  const auto spec = hw::ClusterSpec::thor(2, 4);
  const auto rs = run_training(spec, profiles::mha().allreduce, small);
  const auto rl = run_training(spec, profiles::mha().allreduce, large);
  EXPECT_GT(rl.comm_fraction, 0.0);
  EXPECT_LT(rl.imgs_per_sec, rs.imgs_per_sec);
}

}  // namespace
}  // namespace hmca::apps
