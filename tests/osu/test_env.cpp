// Typed HMCA_* environment surface: parsing, off-values, error paths and
// the unknown-variable typo guard. Tests mutate the process environment,
// so each one restores what it touches.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "osu/env.hpp"

namespace hmca::osu {
namespace {

/// setenv/unsetenv pair that restores the prior value on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

TEST(Env, UnsetAndEmptyReadAsNullopt) {
  ScopedEnv unset(Env::kAllgatherAlgo, nullptr);
  EXPECT_FALSE(Env::allgather_algo().has_value());
  ScopedEnv empty(Env::kAllreduceAlgo, "");
  EXPECT_FALSE(Env::allreduce_algo().has_value());
}

TEST(Env, StringVariablesPassThrough) {
  ScopedEnv algo(Env::kAllgatherAlgo, "ring");
  ScopedEnv faults(Env::kFaults, "kill:0.0@10us");
  EXPECT_EQ(Env::allgather_algo().value(), "ring");
  EXPECT_EQ(Env::faults().value(), "kill:0.0@10us");
}

TEST(Env, ConformanceSeedParsesBase0) {
  {
    ScopedEnv seed(Env::kConformanceSeed, "12345");
    EXPECT_EQ(Env::conformance_seed().value(), 12345u);
  }
  {
    ScopedEnv seed(Env::kConformanceSeed, "0x2a");
    EXPECT_EQ(Env::conformance_seed().value(), 42u);
  }
  {
    ScopedEnv seed(Env::kConformanceSeed, "banana");
    EXPECT_THROW(Env::conformance_seed(), std::invalid_argument);
  }
}

TEST(Env, StatsFormatParsing) {
  EXPECT_EQ(parse_stats_format("", "--stats"), StatsFormat::kText);
  EXPECT_EQ(parse_stats_format("1", "--stats"), StatsFormat::kText);
  EXPECT_EQ(parse_stats_format("text", "--stats"), StatsFormat::kText);
  EXPECT_EQ(parse_stats_format("json", "--stats"), StatsFormat::kJson);
  EXPECT_EQ(parse_stats_format("csv", "--stats"), StatsFormat::kCsv);
  EXPECT_THROW(parse_stats_format("yaml", "--stats"), std::invalid_argument);
}

TEST(Env, StatsVariableHonorsOffValues) {
  {
    ScopedEnv stats(Env::kStats, "json");
    ASSERT_TRUE(Env::stats().has_value());
    EXPECT_EQ(*Env::stats(), StatsFormat::kJson);
  }
  {
    ScopedEnv stats(Env::kStats, "off");
    EXPECT_FALSE(Env::stats().has_value());
  }
  {
    ScopedEnv stats(Env::kStats, "0");
    EXPECT_FALSE(Env::stats().has_value());
  }
  {
    ScopedEnv stats(Env::kStats, "bogus");
    EXPECT_THROW(Env::stats(), std::invalid_argument);
  }
}

TEST(Env, WarnUnknownFlagsTypoedVariables) {
  ScopedEnv typo("HMCA_ALGGATHER_ALGO", "ring");  // transposed letters
  ScopedEnv known(Env::kStats, "json");           // must NOT be flagged
  std::ostringstream os;
  EXPECT_GE(Env::warn_unknown(os), 1);
  EXPECT_NE(os.str().find("HMCA_ALGGATHER_ALGO"), std::string::npos)
      << os.str();
  // Known variables are never flagged (they do appear in each warning's
  // "(known: ...)" suffix, so match the full "variable <name>" form).
  EXPECT_EQ(os.str().find("variable HMCA_STATS"), std::string::npos)
      << os.str();
}

TEST(Env, WarnUnknownSilentWhenEnvironmentIsClean) {
  std::ostringstream os;
  const int n = Env::warn_unknown(os);
  if (n == 0) {
    EXPECT_TRUE(os.str().empty());
  }
}

}  // namespace
}  // namespace hmca::osu
