// The OSU-style harness: measurement plumbing, formatting, sweeps, and the
// --algo registry flag.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "core/selector.hpp"
#include "osu/algo_flag.hpp"
#include "osu/harness.hpp"

namespace hmca::osu {
namespace {

AlgoFlag parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  return parse_algo_flag(static_cast<int>(args.size()),
                         const_cast<char**>(args.data()));
}

TEST(AlgoFlag, ParsesAllForms) {
  EXPECT_TRUE(parse({}).name.empty());
  EXPECT_FALSE(parse({}).list);
  EXPECT_EQ(parse({"--algo", "ring"}).name, "ring");
  EXPECT_EQ(parse({"--algo=ring"}).name, "ring");
  EXPECT_TRUE(parse({"--algo", "list"}).list);
  EXPECT_TRUE(parse({"--algo=list"}).list);
  EXPECT_THROW(parse({"--algo"}), std::invalid_argument);
  EXPECT_THROW(parse({"--algo="}), std::invalid_argument);
}

TEST(AlgoFlag, ListIncludesFlatAndCoreEntries) {
  core::register_core_algorithms();
  std::ostringstream os;
  print_algo_list(os);
  const std::string out = os.str();
  for (const char* needle :
       {"allgather", "ring", "node_aware_bruck", "mha_inter", "allreduce",
        "ring_mha", "bcast", "allgatherv"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

TEST(AlgoFlag, PinnedAllgatherRunsAndMeasures) {
  core::register_core_algorithms();
  const auto spec = hw::ClusterSpec::thor(2, 2);
  EXPECT_GT(measure_allgather(spec, pinned_allgather("node_aware_bruck"), 4096),
            0.0);
  EXPECT_GT(measure_allreduce(spec, pinned_allreduce("rd"), 4096), 0.0);
}

TEST(AlgoFlag, UnknownNameThrowsEagerly) {
  EXPECT_THROW(pinned_allgather("nope"), std::invalid_argument);
  EXPECT_THROW(pinned_allreduce("nope"), std::invalid_argument);
}

TEST(AlgoFlag, InapplicablePinFailsAtCallTime) {
  core::register_core_algorithms();
  // mha_inter_rd needs a power-of-two node count; pinning it on 3 nodes
  // must fail when the measurement runs, naming the algorithm.
  const auto spec = hw::ClusterSpec::thor(3, 2);
  EXPECT_THROW(measure_allgather(spec, pinned_allgather("mha_inter_rd"), 4096),
               std::invalid_argument);
}

coll::AllgatherFn fn_ring() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return coll::allgather_ring(c, r, s, rv, m, ip); };
}

TEST(Harness, AllgatherLatencyPositiveAndMonotonicInSize) {
  const auto spec = hw::ClusterSpec::thor(2, 2);
  const double t_small = measure_allgather(spec, fn_ring(), 1024);
  const double t_large = measure_allgather(spec, fn_ring(), 1u << 20);
  EXPECT_GT(t_small, 0.0);
  EXPECT_GT(t_large, t_small);
}

TEST(Harness, Pt2PtLatencyIntraVsInter) {
  const auto spec = hw::ClusterSpec::thor(2, 2);
  const double intra = measure_pt2pt_latency(spec, 0, 1, 1024);
  const double inter = measure_pt2pt_latency(spec, 0, 2, 1024);
  EXPECT_GT(intra, 0.0);
  EXPECT_GT(inter, 0.0);
  EXPECT_LT(intra, inter);  // small messages: shm beats the wire
}

TEST(Harness, BandwidthApproachesLinkRateForLargeMessages) {
  // Fig. 1's saturation: 4 MB messages on 2 rails -> ~2 x 12.5 GB/s.
  const auto spec = hw::ClusterSpec::thor(2, 1);
  const double bw = measure_pt2pt_bandwidth(spec, 0, 1, 4u << 20, 16);
  EXPECT_GT(bw, 0.85 * 2 * spec.hca_bw);
  EXPECT_LT(bw, 1.02 * 2 * spec.hca_bw);
}

TEST(Harness, IntraNodeBandwidthMatchesCmaRate) {
  const auto spec = hw::ClusterSpec::thor(1, 2);
  const double bw = measure_pt2pt_bandwidth(spec, 0, 1, 4u << 20, 16);
  EXPECT_GT(bw, 0.8 * spec.core_copy_bw);
  EXPECT_LT(bw, 1.05 * spec.core_copy_bw);
}

TEST(Harness, AllreduceLatencyMeasured) {
  const auto spec = hw::ClusterSpec::thor(2, 2);
  const coll::AllreduceFn fn = [](mpi::Comm& c, int r, hw::BufView d,
                                      std::size_t n, mpi::Dtype t,
                                      mpi::ReduceOp op) {
    return coll::allreduce_rd(c, r, d, n, t, op);
  };
  EXPECT_GT(measure_allreduce(spec, fn, 4096), 0.0);
}

TEST(Format, Sizes) {
  EXPECT_EQ(format_size(256), "256");
  EXPECT_EQ(format_size(1024), "1K");
  EXPECT_EQ(format_size(262144), "256K");
  EXPECT_EQ(format_size(4u << 20), "4M");
  EXPECT_EQ(format_size(1000), "1000");
}

TEST(Format, Microseconds) {
  EXPECT_EQ(format_us(1.5e-6), "1.50");
  EXPECT_EQ(format_us(250.04e-6), "250.0");
}

TEST(Format, Ratio) { EXPECT_EQ(format_ratio(1.42), "1.42x"); }

TEST(Format, SizeSweepDoubles) {
  const auto sweep = size_sweep(1024, 8192);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep.front(), 1024u);
  EXPECT_EQ(sweep.back(), 8192u);
}

TEST(TableOutput, PrintAndCsv) {
  Table t;
  t.title = "Demo";
  t.headers = {"size", "hpcx", "mha"};
  t.add_row({"1K", "10.0", "7.5"});
  t.add_row({"2K", "20.0", "11.0"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("size"), std::string::npos);
  EXPECT_NE(text.find("7.5"), std::string::npos);

  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_NE(csv.str().find("size,hpcx,mha"), std::string::npos);
  EXPECT_NE(csv.str().find("2K,20.0,11.0"), std::string::npos);
}

}  // namespace
}  // namespace hmca::osu
