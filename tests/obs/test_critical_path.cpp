// Critical-path analyzer on hand-built span graphs where the longest
// dependency chain is known by construction.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/critical_path.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

using trace::Kind;
using trace::Span;

// Two ranks, three phases: rank 0 copies in (phase1, 2 us), ships the data
// over the NIC to rank 1 (phase2, 4 us), rank 1 copies out (phase3, 3 us).
// The nic_xfer's peer edge is what lets the walk jump from rank 1's
// copy_out back to rank 0.
std::vector<Span> pipeline_spans() {
  return {
      {0, Kind::kPhase, 0.0, 2e-6, -1, 0, "phase1"},
      {0, Kind::kPhase, 2e-6, 6e-6, -1, 0, "phase2"},
      {1, Kind::kPhase, 4e-6, 9e-6, -1, 0, "phase3"},
      {0, Kind::kCopyIn, 0.0, 2e-6, -1, 100, ""},
      {0, Kind::kNicXfer, 2e-6, 6e-6, 1, 400, ""},
      {1, Kind::kCopyOut, 6e-6, 9e-6, -1, 300, ""},
  };
}

TEST(CriticalPath, FollowsPeerEdgesAcrossRanks) {
  const auto rep = analyze_critical_path(pipeline_spans());
  ASSERT_EQ(rep.steps.size(), 3u);
  EXPECT_EQ(rep.steps[0].kind, Kind::kCopyIn);
  EXPECT_EQ(rep.steps[1].kind, Kind::kNicXfer);
  EXPECT_EQ(rep.steps[2].kind, Kind::kCopyOut);
  EXPECT_EQ(rep.steps[0].rank, 0);
  EXPECT_EQ(rep.steps[2].rank, 1);
  EXPECT_NEAR(rep.total, 9e-6, 1e-12);
}

TEST(CriticalPath, AttributesStepsToEnclosingPhases) {
  const auto rep = analyze_critical_path(pipeline_spans());
  ASSERT_EQ(rep.steps.size(), 3u);
  EXPECT_EQ(rep.steps[0].phase, "phase1");
  EXPECT_EQ(rep.steps[1].phase, "phase2");
  EXPECT_EQ(rep.steps[2].phase, "phase3");
  EXPECT_EQ(rep.dominant_kind, "nic_xfer");
  EXPECT_EQ(rep.dominant_phase, "phase2");
  EXPECT_NEAR(rep.by_phase.at("phase2"), 4e-6, 1e-12);
}

TEST(CriticalPath, SummaryNamesDominantKindAndPhase) {
  const auto s = analyze_critical_path(pipeline_spans()).summary();
  EXPECT_NE(s.find("nic_xfer"), std::string::npos) << s;
  EXPECT_NE(s.find("phase2"), std::string::npos) << s;
}

TEST(CriticalPath, WriteJsonCarriesDominantFields) {
  std::ostringstream os;
  analyze_critical_path(pipeline_spans()).write_json(os, 2);
  const std::string j = os.str();
  EXPECT_EQ(j.rfind("  {", 0), 0u);  // indent applies to the first line too
  EXPECT_NE(j.find("\"dominant_kind\": \"nic_xfer\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"dominant_phase\": \"phase2\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"total_us\": 9.000"), std::string::npos) << j;
}

TEST(CriticalPath, EmptySpanStreamYieldsEmptyReport) {
  const auto rep = analyze_critical_path({});
  EXPECT_TRUE(rep.empty());
  EXPECT_EQ(rep.summary(), "critical path: no spans");
}

TEST(CriticalPath, PureWaitPathFallsBackToWaitKind) {
  std::vector<Span> spans = {
      {0, Kind::kWait, 0.0, 5e-6, -1, 0, ""},
  };
  const auto rep = analyze_critical_path(spans);
  ASSERT_EQ(rep.steps.size(), 1u);
  EXPECT_EQ(rep.dominant_kind, "wait");
}

TEST(CriticalPath, OverlapFractionOfPipelinedPhases) {
  // phase2 union [2,6] us, phase3 union [4,9] us: 2 of phase3's 5 us are
  // overlapped -> 0.4.
  EXPECT_NEAR(phase_overlap_fraction(pipeline_spans()), 0.4, 1e-9);
}

TEST(CriticalPath, OverlapFractionZeroWithoutPhase3) {
  std::vector<Span> spans = {
      {0, Kind::kPhase, 0.0, 2e-6, -1, 0, "phase2"},
      {0, Kind::kCopyIn, 0.0, 2e-6, -1, 64, ""},
  };
  EXPECT_DOUBLE_EQ(phase_overlap_fraction(spans), 0.0);
}

}  // namespace
}  // namespace hmca::obs
