// Cross-checks between the two observability channels: the `net` layer's
// per-rail byte counters must reconcile with the kNicXfer spans the same
// run records, and attaching a sink must not perturb the simulation.
#include <gtest/gtest.h>

#include <string>

#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "osu/harness.hpp"
#include "profiles/profiles.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

struct Capture {
  trace::Tracer tracer;
  Metrics metrics;
  double seconds = 0;
};

// Fig. 11 shape: one node, 8 processes, rendezvous-sized message, so the
// MHA intra-node design drives both rails through NIC loopback and every
// rail byte flows inside a kNicXfer span (no eager traffic at 1 MiB).
Capture run_fig11_point() {
  core::register_core_algorithms();
  Capture c;
  CollectSink sink(&c.tracer, &c.metrics);
  c.seconds = osu::measure_allgather(hw::ClusterSpec::thor(1, 8),
                                     profiles::mha().allgather, 1u << 20, sink);
  return c;
}

TEST(ObsReconcile, RailByteCountersMatchNicXferSpans) {
  const auto c = run_fig11_point();
  EXPECT_GT(c.seconds, 0.0);

  double span_bytes = 0;
  for (const auto& s : c.tracer.spans()) {
    if (s.kind == trace::Kind::kNicXfer) {
      span_bytes += static_cast<double>(s.bytes);
    }
  }
  const double counter_bytes = c.metrics.counter_total("net.rail.bytes");
  EXPECT_GT(counter_bytes, 0.0);
  EXPECT_DOUBLE_EQ(counter_bytes, span_bytes);
}

TEST(ObsReconcile, RailsWithTrafficShowNicBusyTime) {
  const auto c = run_fig11_point();
  // Both rails of node 0 must carry bytes (the point of the MHA design)...
  const double r0 = c.metrics.counter_value(
      "net.rail.bytes", {{"node", "0"}, {"rail", "0"}});
  const double r1 = c.metrics.counter_value(
      "net.rail.bytes", {{"node", "0"}, {"rail", "1"}});
  EXPECT_GT(r0, 0.0);
  EXPECT_GT(r1, 0.0);
  // ...and some rank must show wall-clock time attributed to the NIC.
  double busy = 0;
  for (int r = 0; r < 8; ++r) {
    busy += c.tracer.busy_time(r, trace::Kind::kNicXfer);
  }
  EXPECT_GT(busy, 0.0);
}

TEST(ObsReconcile, EveryRailSeriesCarriesNodeAndRailLabels) {
  const auto c = run_fig11_point();
  int series = 0;
  for (const auto& [key, value] : c.metrics.counters()) {
    if (key.name != "net.rail.bytes") continue;
    ++series;
    ASSERT_EQ(key.labels.size(), 2u);
    EXPECT_EQ(key.labels[0].first, "node");
    EXPECT_EQ(key.labels[1].first, "rail");
    EXPECT_GT(value, 0.0);
  }
  EXPECT_GT(series, 0);
}

TEST(ObsReconcile, NullSinkRunMatchesUninstrumentedRun) {
  core::register_core_algorithms();
  const auto spec = hw::ClusterSpec::thor(1, 8);
  const double plain = osu::measure_allgather(
      spec, profiles::mha().allgather, 1u << 20, static_cast<trace::Tracer*>(nullptr));
  const double nulled = osu::measure_allgather(
      spec, profiles::mha().allgather, 1u << 20, null_sink());
  const double observed = run_fig11_point().seconds;
  EXPECT_DOUBLE_EQ(plain, nulled);
  EXPECT_DOUBLE_EQ(plain, observed);
}

}  // namespace
}  // namespace hmca::obs
