// Chrome-trace exporter: golden-file comparison plus edge cases, so the
// JSON stays loadable in Perfetto / chrome://tracing across refactors.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The span set exercises every branch of the exporter: a duration phase
// span (label becomes the event name), a nic_xfer with peer+bytes but no
// label, an instant span (t1 == t0 -> ph "i") whose label needs JSON
// escaping, and a labelled copy carrying every args field at once.
std::vector<trace::Span> golden_spans() {
  using trace::Kind;
  return {
      {0, Kind::kPhase, 0.0, 10e-6, -1, 0, "phase1"},
      {0, Kind::kNicXfer, 2e-6, 8e-6, 1, 4096, ""},
      {1, Kind::kPhase, 5e-6, 5e-6, -1, 0, "select:allgather=\"mha\""},
      {1, Kind::kCmaCopy, 1e-6, 3e-6, 0, 128, "drain"},
  };
}

TEST(ChromeTrace, MatchesGoldenFile) {
  std::ostringstream out;
  write_chrome_trace(out, golden_spans());
  const std::string golden =
      read_file(std::string(HMCA_TEST_SRCDIR) + "/obs/golden/chrome_trace.json");
  EXPECT_EQ(out.str(), golden);
}

TEST(ChromeTrace, EmptySpanListIsValidJson) {
  std::ostringstream out;
  write_chrome_trace(out, {});
  EXPECT_EQ(out.str(), "{\"traceEvents\": []}\n");
}

TEST(ChromeTrace, RankMetadataIsSortedAndDeduplicated) {
  using trace::Kind;
  std::vector<trace::Span> spans = {
      {7, Kind::kCompute, 0.0, 1e-6, -1, 0, ""},
      {3, Kind::kCompute, 0.0, 1e-6, -1, 0, ""},
      {7, Kind::kCompute, 1e-6, 2e-6, -1, 0, ""},
  };
  std::ostringstream out;
  write_chrome_trace(out, spans);
  const std::string s = out.str();
  const auto r3 = s.find("\"rank 3\"");
  const auto r7 = s.find("\"rank 7\"");
  ASSERT_NE(r3, std::string::npos);
  ASSERT_NE(r7, std::string::npos);
  EXPECT_LT(r3, r7);  // numeric order, not span order
  EXPECT_EQ(s.find("\"rank 7\"", r7 + 1), std::string::npos);  // exactly once
}

}  // namespace
}  // namespace hmca::obs
