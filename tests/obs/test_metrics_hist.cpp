// Histogram fixed log2 bucket grammar: edge math, exact first-observe
// min/max seeding, and deterministic (order-independent) quantiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hmca::obs {
namespace {

using Histogram = Metrics::Histogram;

TEST(ObsHistogram, BucketOfEdges) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-5.0), 0);
  // First edge is 2^-4 = 1/16.
  EXPECT_EQ(Histogram::bucket_of(1.0 / 16.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1.0 / 16.0 + 1e-9), 1);
  // 1.0 sits exactly on the edge of bucket kBucketBias.
  EXPECT_EQ(Histogram::bucket_of(1.0), Histogram::kBucketBias);
  EXPECT_EQ(Histogram::bucket_of(2.0), Histogram::kBucketBias + 1);
  // Past the last finite edge 2^42 everything lands in the overflow bucket.
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 42)), Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 43)), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(ObsHistogram, BucketEdgeValues) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_edge(0), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_edge(Histogram::kBucketBias), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_edge(Histogram::kBuckets - 2),
                   std::ldexp(1.0, 42));
  EXPECT_TRUE(std::isinf(Histogram::bucket_edge(Histogram::kBuckets - 1)));
}

TEST(ObsHistogram, FirstObserveSeedsMinMax) {
  Metrics m;
  m.observe("lat", 5.0);
  const Histogram* h = m.histogram("lat");
  ASSERT_NE(h, nullptr);
  // The default-constructed 0 must not win against a first observation > 0.
  EXPECT_DOUBLE_EQ(h->min, 5.0);
  EXPECT_DOUBLE_EQ(h->max, 5.0);
  m.observe("lat", 2.0);
  m.observe("lat", 9.0);
  EXPECT_DOUBLE_EQ(h->min, 2.0);
  EXPECT_DOUBLE_EQ(h->max, 9.0);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->sum, 16.0);
}

TEST(ObsHistogram, SingleValueQuantilesAreExact) {
  Metrics m;
  m.observe("lat", 7.5);
  const Histogram* h = m.histogram("lat");
  ASSERT_NE(h, nullptr);
  // Clamping to [min, max] collapses every quantile onto the lone value.
  EXPECT_DOUBLE_EQ(h->p50(), 7.5);
  EXPECT_DOUBLE_EQ(h->p95(), 7.5);
  EXPECT_DOUBLE_EQ(h->p99(), 7.5);
}

TEST(ObsHistogram, QuantilesAreOrderIndependent) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));

  Metrics fwd, rev;
  for (const double v : values) fwd.observe("lat", v);
  std::reverse(values.begin(), values.end());
  for (const double v : values) rev.observe("lat", v);

  const Histogram* a = fwd.histogram("lat");
  const Histogram* b = rev.histogram("lat");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(a->p50(), b->p50());
  EXPECT_DOUBLE_EQ(a->p95(), b->p95());
  EXPECT_DOUBLE_EQ(a->p99(), b->p99());
}

TEST(ObsHistogram, QuantilesAreMonotoneAndClamped) {
  Metrics m;
  for (int i = 1; i <= 100; ++i) m.observe("lat", static_cast<double>(i));
  const Histogram* h = m.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->p50(), h->min);
  EXPECT_LE(h->p50(), h->p95());
  EXPECT_LE(h->p95(), h->p99());
  EXPECT_LE(h->p99(), h->max);
  // A p50 of uniform 1..100 must land near the middle despite log buckets.
  EXPECT_GT(h->p50(), 30.0);
  EXPECT_LT(h->p50(), 70.0);
}

TEST(ObsHistogram, OverflowBucketQuantileUsesMax) {
  Metrics m;
  m.observe("big", std::ldexp(1.0, 50));
  m.observe("big", std::ldexp(1.0, 51));
  const Histogram* h = m.histogram("big");
  ASSERT_NE(h, nullptr);
  EXPECT_LE(h->p99(), h->max);
  EXPECT_GE(h->p99(), h->min);
}

TEST(ObsHistogram, JsonAndCsvCarryQuantiles) {
  Metrics m;
  m.observe("lat", 4.0, {{"op", "allgather"}});
  std::ostringstream json;
  m.write_json(json);
  EXPECT_NE(json.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p95\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p99\""), std::string::npos);

  std::ostringstream csv;
  m.write_csv(csv);
  EXPECT_NE(csv.str().find("kind,name,labels,value,count,min,max,p50,p95,p99"),
            std::string::npos);
}

}  // namespace
}  // namespace hmca::obs
