// obs::Utilization: priority attribution, the reconciliation invariant
// (per-rank buckets sum to wall time), rail imbalance math, and the
// independent phase-overlap sweep cross-checked against critical_path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/utilization.hpp"
#include "osu/harness.hpp"
#include "profiles/profiles.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

TEST(ObsUtilization, EmptyWithoutWall) {
  const Utilization u = analyze_utilization({}, {}, 0.0);
  EXPECT_TRUE(u.empty());
  EXPECT_EQ(u.summary(), "util: (no data)");
}

TEST(ObsUtilization, PriorityResolvesOverlaps) {
  // rank 0 over wall=1: waits the whole second, a NIC transfer [0.2, 0.5]
  // and compute [0.4, 0.6] overlap it. compute > nic > wait, so:
  // compute = [0.4,0.6] = 0.2, nic = [0.2,0.4] = 0.2,
  // wait = [0,0.2] + [0.6,1.0] = 0.6, idle = 0.
  std::vector<trace::Span> spans{
      {0, trace::Kind::kWait, 0.0, 1.0, -1, 0, ""},
      {0, trace::Kind::kNicXfer, 0.2, 0.5, -1, 0, ""},
      {0, trace::Kind::kCompute, 0.4, 0.6, -1, 0, ""}};
  const Utilization u = analyze_utilization(spans, {}, 1.0);
  ASSERT_EQ(u.ranks.size(), 1u);
  const auto& r = u.ranks[0];
  EXPECT_DOUBLE_EQ(r.compute, 0.2);
  EXPECT_DOUBLE_EQ(r.nic, 0.2);
  EXPECT_DOUBLE_EQ(r.wait, 0.6);
  EXPECT_DOUBLE_EQ(r.shm, 0.0);
  EXPECT_DOUBLE_EQ(r.idle, 0.0);
}

TEST(ObsUtilization, RanksWithoutSpansAreIdle) {
  std::vector<trace::Span> spans{
      {2, trace::Kind::kCompute, 0.0, 0.5, -1, 0, ""}};
  const Utilization u = analyze_utilization(spans, {}, 1.0);
  ASSERT_EQ(u.ranks.size(), 3u);  // ranks 0..2
  EXPECT_DOUBLE_EQ(u.ranks[0].idle, 1.0);
  EXPECT_DOUBLE_EQ(u.ranks[1].idle, 1.0);
  EXPECT_DOUBLE_EQ(u.ranks[2].compute, 0.5);
}

TEST(ObsUtilization, RailImbalanceIsMaxOverMean) {
  std::vector<ResourceSample> samples{
      {"net.rail", {{"node", "0"}, {"rail", "0"}}, 0.0, 0.2, 100.0},
      {"net.rail", {{"node", "0"}, {"rail", "1"}}, 0.0, 0.6, 300.0}};
  const Utilization u = analyze_utilization({}, samples, 1.0);
  ASSERT_EQ(u.rails.size(), 2u);
  EXPECT_DOUBLE_EQ(u.rails[0].busy_frac, 0.2);
  EXPECT_DOUBLE_EQ(u.rails[1].busy_frac, 0.6);
  EXPECT_DOUBLE_EQ(u.rails[0].bytes, 100.0);
  // mean = 0.4, max = 0.6 -> 1.5
  EXPECT_DOUBLE_EQ(u.rail_imbalance, 1.5);
}

TEST(ObsUtilization, QuietRailCalledOutInSummary) {
  std::vector<ResourceSample> samples{
      {"net.rail", {{"node", "0"}, {"rail", "0"}}, 0.0, 0.8, 100.0},
      {"net.rail", {{"node", "0"}, {"rail", "1"}}, 0.0, 0.001, 1.0}};
  const Utilization u = analyze_utilization({}, samples, 1.0);
  const std::string s = u.summary();
  EXPECT_NE(s.find("quiet"), std::string::npos) << s;
  EXPECT_NE(s.find("node0/rail1"), std::string::npos) << s;
}

struct Capture {
  trace::Tracer tracer;
  Metrics metrics;
  std::vector<ResourceSample> samples;
  double seconds = 0;
};

Capture run_point(const hw::ClusterSpec& spec, std::size_t msg) {
  core::register_core_algorithms();
  Capture c;
  CollectSink sink(&c.tracer, &c.metrics, &c.samples);
  c.seconds = osu::measure_allgather(spec, profiles::mha().allgather, msg,
                                     sink);
  return c;
}

TEST(ObsUtilization, PerRankBucketsReconcileWithWallTime) {
  const Capture c = run_point(hw::ClusterSpec::thor(1, 8), 1u << 20);
  const Utilization u =
      analyze_utilization(c.tracer.spans(), c.samples, c.seconds);
  ASSERT_EQ(u.ranks.size(), 8u);
  const double eps = c.seconds * 1e-9;
  for (const auto& r : u.ranks) {
    EXPECT_NEAR(r.compute + r.nic + r.shm + r.wait + r.idle, c.seconds, eps)
        << "rank " << r.rank;
    EXPECT_GE(r.idle, 0.0);
  }
}

TEST(ObsUtilization, PhaseOverlapMatchesCriticalPathMeasure) {
  // Two nodes so the hierarchical design runs phases 2 and 3; the
  // independent sweep must agree with critical_path's union/intersection
  // implementation to floating-point accuracy.
  const Capture c = run_point(hw::ClusterSpec::thor(2, 8), 1u << 20);
  const Utilization u =
      analyze_utilization(c.tracer.spans(), c.samples, c.seconds);
  const double reference = phase_overlap_fraction(c.tracer.spans());
  EXPECT_GT(reference, 0.0);
  EXPECT_NEAR(u.phase_overlap, reference, 1e-12);
}

TEST(ObsUtilization, FinishTimesTrackCpuAndNic) {
  const Capture c = run_point(hw::ClusterSpec::thor(2, 8), 1u << 20);
  const Utilization u =
      analyze_utilization(c.tracer.spans(), c.samples, c.seconds);
  EXPECT_GT(u.cpu_finish, 0.0);
  EXPECT_GT(u.nic_finish, 0.0);
  EXPECT_LE(u.cpu_finish, c.seconds * (1 + 1e-12));
  EXPECT_LE(u.nic_finish, c.seconds * (1 + 1e-12));
  // The slowest-rank completion is one of the two.
  EXPECT_NEAR(std::max(u.cpu_finish, u.nic_finish), c.seconds,
              c.seconds * 1e-9);
}

TEST(ObsUtilization, RailsBalancedOnHealthyMultiRailRun) {
  const Capture c = run_point(hw::ClusterSpec::thor(1, 8), 1u << 20);
  const Utilization u =
      analyze_utilization(c.tracer.spans(), c.samples, c.seconds);
  ASSERT_FALSE(u.rails.empty());
  // The MHA design stripes evenly across rails: imbalance stays near 1.
  EXPECT_GE(u.rail_imbalance, 1.0 - 1e-9);
  EXPECT_LT(u.rail_imbalance, 1.25);
}

}  // namespace
}  // namespace hmca::obs
