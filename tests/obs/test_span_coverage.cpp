// Span-coverage conformance: every registered algorithm, in every
// collective family, must emit the telemetry the diff attribution needs —
// phase annotations and (for graph-routed families) task spans whose
// critical path classifies into cpu/nic/shm resource classes. An algorithm
// that runs silent would align against nothing in hmca-diff, so its
// regressions could never be explained; this suite makes that a test
// failure instead of a blind spot.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "core/selector.hpp"
#include "obs/critical_path.hpp"
#include "obs/names.hpp"
#include "obs/sink.hpp"
#include "testing/conformance.hpp"
#include "trace/trace.hpp"

namespace hmca {
namespace {

using testing::conf::Trial;

/// One fixed healthy shape: 2 nodes x 2 ranks, dual rail. Large enough to
/// exercise inter-node phases, small enough that the whole registry sweep
/// stays fast.
Trial coverage_trial() {
  Trial t;
  t.nodes = 2;
  t.ppn = 2;
  t.hcas = 2;
  t.sockets = 1;
  t.msg = 4096;
  t.in_place = false;
  t.fault_plan = "";
  t.seed = 0xc0ffee;
  t.index = 0;
  return t;
}

struct Coverage {
  std::size_t spans = 0;
  std::size_t phase_spans = 0;  ///< non-annotation kPhase spans
  std::size_t task_spans = 0;
  double cp_total_us = 0;
  double cp_classified_us = 0;  ///< path time with a non-"" resource class
};

Coverage analyze(const std::vector<trace::Span>& spans) {
  Coverage c;
  c.spans = spans.size();
  for (const auto& s : spans) {
    if (s.kind == trace::Kind::kPhase && !obs::names::is_annotation(s.label)) {
      ++c.phase_spans;
    }
    if (s.kind == trace::Kind::kTask) ++c.task_spans;
  }
  const obs::CriticalPathReport cp = obs::analyze_critical_path(spans);
  c.cp_total_us = cp.total * 1e6;
  for (const auto& st : cp.steps) {
    if (*obs::names::span_resource_class(st.kind, st.label) != '\0') {
      c.cp_classified_us += (st.t1 - st.t0) * 1e6;
    }
  }
  return c;
}

/// The shared assertions: phases annotated, critical path non-empty and
/// attributable. `graph_routed` additionally requires task spans (legacy
/// allreduce/bcast bodies are not yet executed through the task graph).
void expect_attributable(const std::string& family, const std::string& algo,
                         const Coverage& c, bool graph_routed) {
  SCOPED_TRACE(family + " '" + algo + "'");
  EXPECT_GT(c.spans, 0u) << "emitted no spans at all";
  EXPECT_GT(c.phase_spans, 0u) << "emitted no phase annotations";
  if (graph_routed) {
    EXPECT_GT(c.task_spans, 0u) << "graph-routed but emitted no task spans";
  }
  EXPECT_GT(c.cp_total_us, 0.0) << "critical path is empty";
  EXPECT_GT(c.cp_classified_us, 0.0)
      << "no critical-path time classifies into cpu/nic/shm/wait — "
         "hmca-diff could not attribute a regression in this algorithm";
}

class SpanCoverage : public ::testing::Test {
 protected:
  void SetUp() override { core::register_core_algorithms(); }
};

TEST_F(SpanCoverage, Allgathers) {
  const Trial t = coverage_trial();
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().allgathers()) {
    if (algo.applies && !algo.applies(shape, t.msg)) continue;
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_allgather(algo.fn, t, sink);
    expect_attributable("allgather", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

TEST_F(SpanCoverage, Allgathervs) {
  const Trial t = coverage_trial();
  const int p = t.nodes * t.ppn;
  std::vector<std::size_t> counts;
  for (int r = 0; r < p; ++r) {
    counts.push_back(1000 + 37 * static_cast<std::size_t>(r));
  }
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().allgathervs()) {
    if (algo.applies && !algo.applies(shape, total)) continue;
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_allgatherv(algo.fn, t, counts, &sink);
    expect_attributable("allgatherv", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

TEST_F(SpanCoverage, Alltoalls) {
  const Trial t = coverage_trial();
  const std::size_t msg = 2048;
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().alltoalls()) {
    if (algo.applies && !algo.applies(shape, msg)) continue;
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_alltoall(algo.fn, t, msg, &sink);
    expect_attributable("alltoall", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

TEST_F(SpanCoverage, Alltoallvs) {
  const Trial t = coverage_trial();
  const int p = t.nodes * t.ppn;
  std::vector<std::size_t> counts(static_cast<std::size_t>(p * p));
  std::size_t total = 0;
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      const std::size_t c = 64 * static_cast<std::size_t>(i + j + 1);
      counts[static_cast<std::size_t>(i * p + j)] = c;
      total += c;
    }
  }
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().alltoallvs()) {
    if (algo.applies && !algo.applies(shape, total)) continue;
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_alltoallv(algo.fn, t, counts, &sink);
    expect_attributable("alltoallv", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

TEST_F(SpanCoverage, ReduceScatters) {
  const Trial t = coverage_trial();
  const std::size_t count = 96;  // divisible by p = 4
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().reduce_scatters()) {
    if (algo.applies &&
        !algo.applies(shape, count, mpi::dtype_size(mpi::Dtype::kInt32))) {
      continue;
    }
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_reduce_scatter(algo.fn, t, count, mpi::Dtype::kInt32,
                                      mpi::ReduceOp::kSum, &sink);
    expect_attributable("reduce_scatter", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

TEST_F(SpanCoverage, Allreduces) {
  const Trial t = coverage_trial();
  const std::size_t count = 96;
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().allreduces()) {
    if (algo.applies &&
        !algo.applies(shape, count, mpi::dtype_size(mpi::Dtype::kInt32))) {
      continue;
    }
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_allreduce(algo.fn, t, count, mpi::Dtype::kInt32,
                                 mpi::ReduceOp::kSum, &sink);
    expect_attributable("allreduce", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

TEST_F(SpanCoverage, Bcasts) {
  const Trial t = coverage_trial();
  const auto shape = testing::conf::shape_of(t);
  for (const auto& algo : coll::Registry::instance().bcasts()) {
    if (algo.applies && !algo.applies(shape, t.msg)) continue;
    trace::Tracer tracer;
    obs::CollectSink sink(&tracer);
    testing::conf::run_bcast(algo.fn, t, &sink);
    expect_attributable("bcast", algo.name, analyze(tracer.spans()),
                        algo.graph != coll::GraphMode::kNone);
  }
}

}  // namespace
}  // namespace hmca
