// obs::Timeline: bucket-edge math, attribution rules (proportional bytes,
// interval-union busy, step-series means) and the determinism guarantee —
// two identical runs must export byte-identical timeline JSON.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/timeline.hpp"
#include "osu/harness.hpp"
#include "profiles/profiles.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

TEST(ObsTimeline, BucketEdges) {
  EXPECT_EQ(timeline_bucket_of(0.0, 1.0, 48), 0);
  EXPECT_EQ(timeline_bucket_of(1.0, 1.0, 48), 47);  // t == wall: last bucket
  EXPECT_EQ(timeline_bucket_of(0.5, 1.0, 2), 1);
  EXPECT_EQ(timeline_bucket_of(0.4999, 1.0, 2), 0);
  EXPECT_EQ(timeline_bucket_of(-0.1, 1.0, 48), 0);   // clamped
  EXPECT_EQ(timeline_bucket_of(2.0, 1.0, 48), 47);   // clamped
  EXPECT_EQ(timeline_bucket_of(0.5, 0.0, 48), 0);    // degenerate wall
  EXPECT_EQ(timeline_bucket_of(0.5, 1.0, 0), 0);     // degenerate buckets
}

TEST(ObsTimeline, EmptyWhenNoWall) {
  const Timeline tl = build_timeline({}, {}, 0.0);
  EXPECT_TRUE(tl.empty());
  EXPECT_EQ(tl.buckets, 0);
}

TEST(ObsTimeline, BytesAttributeProportionally) {
  // One 100-byte transfer covering exactly the first half of the wall.
  std::vector<ResourceSample> samples{
      {"net.rail", {{"node", "0"}, {"rail", "0"}}, 0.0, 0.5, 100.0}};
  const Timeline tl = build_timeline({}, samples, 1.0, 2);
  const auto* bytes =
      tl.find("net.rail.bytes", {{"node", "0"}, {"rail", "0"}});
  ASSERT_NE(bytes, nullptr);
  ASSERT_EQ(bytes->values.size(), 2u);
  EXPECT_DOUBLE_EQ(bytes->values[0], 100.0);
  EXPECT_DOUBLE_EQ(bytes->values[1], 0.0);
  EXPECT_EQ(bytes->unit, "bytes");
}

TEST(ObsTimeline, BusyIsIntervalUnionNotSum) {
  // Two overlapping transfers on the same rail: [0, 0.5] and [0.25, 0.75].
  // Union is [0, 0.75], so bucket 0 is fully busy (not 150%) and bucket 1
  // is half busy.
  const Labels rail{{"node", "0"}, {"rail", "0"}};
  std::vector<ResourceSample> samples{{"net.rail", rail, 0.0, 0.5, 10.0},
                                      {"net.rail", rail, 0.25, 0.75, 10.0}};
  const Timeline tl = build_timeline({}, samples, 1.0, 2);
  const auto* busy = tl.find("net.rail.busy", rail);
  ASSERT_NE(busy, nullptr);
  EXPECT_DOUBLE_EQ(busy->values[0], 1.0);
  EXPECT_DOUBLE_EQ(busy->values[1], 0.5);
}

TEST(ObsTimeline, StepSeriesTimeWeightedMean) {
  // Active flows: 0 until t=0.25, then 2 until t=0.5, then 0. Bucket 0
  // mean = (0 * 0.25 + 2 * 0.25) / 0.5 = 1; bucket 1 mean = 0.
  std::vector<ResourceSample> samples{{"sim.flows", {}, 0.25, 0.25, 2.0},
                                      {"sim.flows", {}, 0.5, 0.5, 0.0}};
  const Timeline tl = build_timeline({}, samples, 1.0, 2);
  const auto* flows = tl.find("sim.flows");
  ASSERT_NE(flows, nullptr);
  EXPECT_DOUBLE_EQ(flows->values[0], 1.0);
  EXPECT_DOUBLE_EQ(flows->values[1], 0.0);
  EXPECT_EQ(flows->unit, "count");
}

TEST(ObsTimeline, RailHealthStartsHealthy) {
  // A degrade to 0.5 at t=0.5: bucket 0 holds the initial 1.0, bucket 1
  // the degraded level.
  const Labels rail{{"node", "0"}, {"rail", "1"}};
  std::vector<ResourceSample> samples{
      {"net.rail.health", rail, 0.5, 0.5, 0.5}};
  const Timeline tl = build_timeline({}, samples, 1.0, 2);
  const auto* health = tl.find("net.rail.health", rail);
  ASSERT_NE(health, nullptr);
  EXPECT_DOUBLE_EQ(health->values[0], 1.0);
  EXPECT_DOUBLE_EQ(health->values[1], 0.5);
}

TEST(ObsTimeline, CpuCopyTracksFromSpans) {
  // One rank, one copy span covering the first half: cpu.copy_busy is the
  // mean fraction of ranks inside a copy; shm.copy_bytes_per_s carries the
  // payload rate.
  std::vector<trace::Span> spans{
      {0, trace::Kind::kCopyIn, 0.0, 0.5, -1, 64, ""}};
  const Timeline tl = build_timeline(spans, {}, 1.0, 2);
  const auto* busy = tl.find("cpu.copy_busy");
  ASSERT_NE(busy, nullptr);
  EXPECT_DOUBLE_EQ(busy->values[0], 1.0);
  EXPECT_DOUBLE_EQ(busy->values[1], 0.0);
  const auto* rate = tl.find("shm.copy_bytes_per_s");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->values[0], 128.0);  // 64 bytes over 0.5 s
}

TEST(ObsTimeline, PhaseOccupancySkipsAnnotations) {
  std::vector<trace::Span> spans{
      {0, trace::Kind::kPhase, 0.0, 0.5, -1, 0, "phase2"},
      {0, trace::Kind::kPhase, 0.0, 0.5, -1, 0, "select:mha"},
      {0, trace::Kind::kPhase, 0.2, 0.2, -1, 0, "fault:kill"}};
  const Timeline tl = build_timeline(spans, {}, 1.0, 2);
  EXPECT_NE(tl.find("phase.occupancy", {{"phase", "phase2"}, {"rank", "0"}}),
            nullptr);
  EXPECT_EQ(tl.find("phase.occupancy", {{"phase", "select:mha"}, {"rank", "0"}}),
            nullptr);
  EXPECT_EQ(tl.tracks.size(), 1u);
}

struct Capture {
  trace::Tracer tracer;
  Metrics metrics;
  std::vector<ResourceSample> samples;
  double seconds = 0;
};

Capture run_fig11_point() {
  core::register_core_algorithms();
  Capture c;
  CollectSink sink(&c.tracer, &c.metrics, &c.samples);
  c.seconds = osu::measure_allgather(hw::ClusterSpec::thor(1, 8),
                                     profiles::mha().allgather, 1u << 20, sink);
  return c;
}

TEST(ObsTimeline, RealRunProducesRailTracks) {
  const Capture c = run_fig11_point();
  ASSERT_FALSE(c.samples.empty());
  const Timeline tl =
      build_timeline(c.tracer.spans(), c.samples, c.seconds);
  EXPECT_EQ(tl.buckets, kDefaultTimelineBuckets);
  EXPECT_NE(tl.find("net.rail.busy", {{"node", "0"}, {"rail", "0"}}),
            nullptr);
  EXPECT_NE(tl.find("net.rail.bytes", {{"node", "0"}, {"rail", "1"}}),
            nullptr);
  EXPECT_NE(tl.find("sim.flows"), nullptr);
  // Byte attribution conserves the total.
  const auto* bytes =
      tl.find("net.rail.bytes", {{"node", "0"}, {"rail", "0"}});
  double total = 0;
  for (const double v : bytes->values) total += v;
  EXPECT_NEAR(total,
              c.metrics.counter_value("net.rail.bytes",
                                      {{"node", "0"}, {"rail", "0"}}),
              total * 1e-9);
}

TEST(ObsTimeline, JsonIsByteIdenticalAcrossRuns) {
  const Capture a = run_fig11_point();
  const Capture b = run_fig11_point();
  std::ostringstream ja, jb;
  build_timeline(a.tracer.spans(), a.samples, a.seconds).write_json(ja);
  build_timeline(b.tracer.spans(), b.samples, b.seconds).write_json(jb);
  ASSERT_FALSE(ja.str().empty());
  EXPECT_EQ(ja.str(), jb.str());
}

}  // namespace
}  // namespace hmca::obs
