// obs report rendering: the HTML dashboard is self-contained (no scripts,
// no external references), deterministic (byte-identical across renders of
// the same data), and the text mode carries the utilization summary.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "obs/timeline.hpp"
#include "obs/utilization.hpp"
#include "osu/harness.hpp"
#include "profiles/profiles.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

ReportData real_report() {
  core::register_core_algorithms();
  trace::Tracer tracer;
  Metrics metrics;
  std::vector<ResourceSample> samples;
  CollectSink sink(&tracer, &metrics, &samples);
  const double seconds = osu::measure_allgather(
      hw::ClusterSpec::thor(1, 8), profiles::mha().allgather, 1u << 20, sink);

  ReportData d;
  d.title = "osu_allgather";
  d.sources.push_back("captured in-process (1 invocation)");
  ReportData::Invocation inv;
  inv.subject = "mha";
  inv.op = "allgather";
  inv.msg_bytes = 1u << 20;
  inv.latency_us = seconds * 1e6;
  inv.timeline = build_timeline(tracer.spans(), samples, seconds);
  inv.util = analyze_utilization(tracer.spans(), samples, seconds);
  d.invocations.push_back(std::move(inv));
  for (const auto& s : tracer.spans()) {
    if (s.kind == trace::Kind::kPhase) continue;
    if (d.trace.size() >= kReportTraceEventCap) {
      ++d.trace_dropped;
      continue;
    }
    d.trace.push_back({s.rank, s.t0 * 1e6, (s.t1 - s.t0) * 1e6,
                       trace::kind_name(s.kind)});
  }
  d.bench_metric = "latency_us";
  d.bench.push_back({"fig11/mha", {{1024, 10.5}, {4096, 20.25}}});
  return d;
}

std::string render_html(const ReportData& d) {
  std::ostringstream os;
  write_html_report(os, d);
  return os.str();
}

TEST(ObsReport, HtmlIsByteIdenticalAcrossRenders) {
  const ReportData d = real_report();
  const std::string a = render_html(d);
  const std::string b = render_html(d);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ObsReport, HtmlIsSelfContained) {
  const std::string html = render_html(real_report());
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  // Zero external assets and zero scripts: nothing to fetch, nothing to run.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
}

TEST(ObsReport, HtmlShowsTheMainSections) {
  const std::string html = render_html(real_report());
  EXPECT_NE(html.find("osu_allgather"), std::string::npos);
  EXPECT_NE(html.find("Per-rank wall-time attribution"), std::string::npos);
  EXPECT_NE(html.find("Resource timelines"), std::string::npos);
  EXPECT_NE(html.find("Span timeline"), std::string::npos);
  EXPECT_NE(html.find("fig11/mha"), std::string::npos);
}

TEST(ObsReport, HtmlEscapesUserStrings) {
  ReportData d;
  d.title = "a<b>&\"c\"";
  const std::string html = render_html(d);
  EXPECT_EQ(html.find("a<b>"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b&gt;&amp;"), std::string::npos);
}

TEST(ObsReport, TextModeCarriesUtilizationSummary) {
  const ReportData d = real_report();
  std::ostringstream os;
  write_text_report(os, d);
  const std::string text = os.str();
  EXPECT_NE(text.find("osu_allgather"), std::string::npos);
  EXPECT_NE(text.find("util:"), std::string::npos);
  EXPECT_NE(text.find("fig11/mha"), std::string::npos);
}

TEST(ObsReport, EmptyDataStillRenders) {
  ReportData d;
  d.title = "empty";
  const std::string html = render_html(d);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  std::ostringstream os;
  write_text_report(os, d);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace hmca::obs
