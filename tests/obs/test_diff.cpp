// Differential attribution (obs/diff.hpp) on hand-built runs where the
// injected cause is known by construction: the top-ranked attribution must
// name the phase and resource class (or the changed decision) that was
// actually perturbed, and the serialized report must be byte-identical
// across repeated writes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/diff.hpp"
#include "trace/trace.hpp"

namespace hmca::obs {
namespace {

using trace::Kind;
using trace::Span;

/// A healthy baseline invocation: 200 us latency, the critical path split
/// 50 us phase1/shm + 100 us phase2/nic, one rail, a ring decision.
RunSummary baseline() {
  RunSummary rs;
  rs.id = "fig13";
  rs.op = "allgather";
  rs.subject = "mha";
  rs.msg_bytes = 65536;
  rs.latency_us = 200;
  rs.critical_path_us = 150;
  rs.world = "nodes=2,ppn=2,hcas=2,sockets=1";
  rs.decisions = {"allgather=ring,cost"};
  rs.phase_us = {{"phase1", 50}, {"phase2", 100}};
  rs.resource_us = {{"shm", 50}, {"nic", 100}};
  rs.phase_resource_us = {{"phase1", {{"shm", 50}}},
                          {"phase2", {{"nic", 100}}}};
  rs.rail_busy_us = {{"node0/rail0", 80}, {"node0/rail1", 80}};
  rs.rail_bytes = {{"node0/rail0", 1 << 20}, {"node0/rail1", 1 << 20}};
  rs.phase_rail_busy_us = {{"phase2", {{"node0/rail0", 80},
                                       {"node0/rail1", 80}}}};
  rs.task_us = {{"task:rdma:hca b1", 100}, {"task:shm_in:stage", 50}};
  rs.counters = {{"net.retries", 0}};
  return rs;
}

TEST(ObsDiff, InjectedPhase2NicSlowdownIsTopAttribution) {
  const RunSummary base = baseline();
  RunSummary next = baseline();
  // Inject: +50 us of nic time in phase2, carried through every surface
  // the way a real slow rail would be.
  next.latency_us = 250;
  next.critical_path_us = 200;
  next.phase_us["phase2"] = 150;
  next.resource_us["nic"] = 150;
  next.phase_resource_us["phase2"]["nic"] = 150;
  next.rail_busy_us["node0/rail1"] = 130;
  next.phase_rail_busy_us["phase2"]["node0/rail1"] = 130;
  next.task_us["task:rdma:hca b1"] = 150;

  const DiffReport rep = diff_runs({base}, {next});
  ASSERT_EQ(rep.invocations.size(), 1u);
  const InvocationDiff& inv = rep.invocations[0];
  EXPECT_EQ(inv.key, "allgather/mha/65536");
  EXPECT_NEAR(inv.delta_us, 50.0, 1e-9);
  EXPECT_NEAR(inv.rel, 0.25, 1e-12);
  EXPECT_TRUE(inv.world_mismatch.empty());

  // Every top-ranked attribution names the injected cause: phase2 and/or
  // the nic class, each owning 100% of the delta. Rail busy (a parallel
  // sum, not additive toward latency) must rank below all of them.
  ASSERT_GE(inv.attributions.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const Attribution& a = inv.attributions[static_cast<std::size_t>(i)];
    EXPECT_TRUE(a.name.find("phase2") != std::string::npos ||
                a.name.find("nic") != std::string::npos ||
                a.name.find("rdma") != std::string::npos)
        << "rank " << i << " attribution: " << a.category << " " << a.name;
    EXPECT_NE(a.category, "rail");
    EXPECT_NE(a.category, "phase.rail");
    EXPECT_NEAR(a.delta, 50.0, 1e-9);
    EXPECT_NEAR(a.share, 1.0, 1e-9);
  }

  // The headline pins the joint cell and corroborates with the hot rail.
  const std::string h = inv.headline();
  EXPECT_NE(h.find("100% of delta on phase.resource phase2/nic"),
            std::string::npos)
      << h;
  EXPECT_NE(h.find("node0/rail1"), std::string::npos) << h;

  // Rail attributions are present as context but never claim a share.
  bool saw_rail = false;
  for (const auto& a : inv.attributions) {
    if (a.category == "rail" || a.category == "phase.rail") {
      saw_rail = true;
      EXPECT_EQ(a.share, 0.0) << a.category << " " << a.name;
    }
  }
  EXPECT_TRUE(saw_rail);
}

TEST(ObsDiff, DecisionChangeOwnsTheWholeDelta) {
  const RunSummary base = baseline();
  RunSummary next = baseline();
  next.latency_us = 236;
  next.decisions = {"allgather=hier3,cost"};

  const DiffReport rep = diff_runs({base}, {next});
  ASSERT_EQ(rep.invocations.size(), 1u);
  const InvocationDiff& inv = rep.invocations[0];
  ASSERT_FALSE(inv.attributions.empty());
  const Attribution& top = inv.attributions[0];
  EXPECT_EQ(top.category, "decision");
  EXPECT_EQ(top.name, "allgather");
  EXPECT_EQ(top.note, "ring,cost -> hier3,cost");
  EXPECT_NEAR(top.delta, 36.0, 1e-9);
  EXPECT_NEAR(top.share, 1.0, 1e-9);
  EXPECT_NE(inv.headline().find("decision allgather: ring,cost -> hier3,cost"),
            std::string::npos)
      << inv.headline();
}

TEST(ObsDiff, WorldMismatchIsFlaggedNotAttributed) {
  const RunSummary base = baseline();
  RunSummary next = baseline();
  next.world = "nodes=4,ppn=2,hcas=2,sockets=1";
  next.latency_us = 400;

  const DiffReport rep = diff_runs({base}, {next});
  ASSERT_EQ(rep.invocations.size(), 1u);
  EXPECT_TRUE(rep.has_world_mismatch());
  EXPECT_NE(rep.invocations[0].world_mismatch.find("world mismatch"),
            std::string::npos);
  EXPECT_NE(rep.invocations[0].headline().find("shape change"),
            std::string::npos);
}

TEST(ObsDiff, MissingRailDiffsAgainstZeroWithNote) {
  const RunSummary base = baseline();
  RunSummary next = baseline();
  next.rail_busy_us.erase("node0/rail1");
  next.rail_bytes.erase("node0/rail1");

  const DiffReport rep = diff_runs({base}, {next});
  ASSERT_EQ(rep.invocations.size(), 1u);
  const InvocationDiff& inv = rep.invocations[0];
  ASSERT_FALSE(inv.notes.empty());
  EXPECT_NE(inv.notes[0].find("rail sets differ"), std::string::npos);
  bool saw = false;
  for (const auto& a : inv.attributions) {
    if (a.category == "rail" && a.name == "node0/rail1") {
      saw = true;
      EXPECT_EQ(a.next, 0.0);
      EXPECT_EQ(a.note, "only in base run");
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ObsDiff, UnmatchedInvocationsLandInOnlyLists) {
  RunSummary extra = baseline();
  extra.msg_bytes = 1 << 20;
  const DiffReport rep = diff_runs({baseline(), extra}, {baseline()});
  ASSERT_EQ(rep.invocations.size(), 1u);
  ASSERT_EQ(rep.only_base.size(), 1u);
  EXPECT_EQ(rep.only_base[0], "allgather/mha/1048576");
  EXPECT_TRUE(rep.only_next.empty());
}

TEST(ObsDiff, JsonBytesAreIdenticalAcrossWrites) {
  const RunSummary base = baseline();
  RunSummary next = baseline();
  next.latency_us = 250;
  next.phase_resource_us["phase2"]["nic"] = 150;
  next.decisions = {"allgather=hier3,cost"};
  const DiffReport rep = diff_runs({base}, {next});

  std::ostringstream a, b;
  rep.write_json(a);
  rep.write_json(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"format\": \"hmca-diff-1\""), std::string::npos);

  // A fresh diff of the same inputs also serializes to the same bytes.
  std::ostringstream c;
  diff_runs({base}, {next}).write_json(c);
  EXPECT_EQ(a.str(), c.str());

  std::ostringstream t1, t2, h1, h2;
  rep.write_text(t1);
  rep.write_text(t2);
  rep.write_html(h1);
  rep.write_html(h2);
  EXPECT_EQ(t1.str(), t2.str());
  EXPECT_EQ(h1.str(), h2.str());
}

TEST(ObsDiff, SummarizeInvocationClassifiesTaskSpans) {
  // One phase2 window containing one rdma task: the critical path is the
  // task span, and its time must land in the nic class via the label's
  // task-kind token (kTask itself carries no class).
  std::vector<Span> spans = {
      {0, Kind::kPhase, 0.0, 150e-6, -1, 0, "phase2"},
      {0, Kind::kTask, 10e-6, 110e-6, -1, 65536, "task:rdma:hca b1#c0"},
      {0, Kind::kPhase, 0.0, 0.0, -1, 0, "select:allgather=ring,cost"},
  };
  const RunSummary rs = summarize_invocation(
      "fig13", "allgather", "mha", 65536, spans, {}, nullptr, 150e-6);
  EXPECT_NEAR(rs.latency_us, 150.0, 1e-9);
  ASSERT_EQ(rs.decisions.size(), 1u);
  EXPECT_EQ(rs.decisions[0], "allgather=ring,cost");
  ASSERT_TRUE(rs.resource_us.count("nic"));
  EXPECT_NEAR(rs.resource_us.at("nic"), 100.0, 1e-6);
  ASSERT_TRUE(rs.phase_resource_us.count("phase2"));
  EXPECT_NEAR(rs.phase_resource_us.at("phase2").at("nic"), 100.0, 1e-6);
  // Chunk suffix stripped, so different chunkings align.
  ASSERT_TRUE(rs.task_us.count("task:rdma:hca b1"));
  EXPECT_NEAR(rs.task_us.at("task:rdma:hca b1"), 100.0, 1e-6);
}

TEST(ObsDiff, RunSummaryFromMetricsParsesAttributionSurfaces) {
  const std::map<std::string, double> metrics = {
      {"latency_us", 250},
      {"critical_path_us", 200},
      {"overlap_fraction", 0.5},
      {"cp_phase_phase2_us", 150},
      {"cp_class_nic_us", 150},
      {"cp_cell_phase2_nic_us", 150},
      {"cp_kind_cma_copy_us", 30},
      {"net_rail0_bytes", 4096},
      {"rail0_busy_frac", 0.4},
      {"net_retries", 2},
  };
  const RunSummary rs = run_summary_from_metrics("fig13", "allgather", "mha",
                                                 65536, metrics, "ring");
  EXPECT_NEAR(rs.latency_us, 250, 1e-12);
  EXPECT_NEAR(rs.critical_path_us, 200, 1e-12);
  EXPECT_NEAR(rs.overlap_fraction, 0.5, 1e-12);
  EXPECT_NEAR(rs.phase_us.at("phase2"), 150, 1e-12);
  // cp_class_ feeds the class directly; cp_kind_ folds through the kind's
  // class (cma_copy -> shm).
  EXPECT_NEAR(rs.resource_us.at("nic"), 150, 1e-12);
  EXPECT_NEAR(rs.resource_us.at("shm"), 30, 1e-12);
  EXPECT_NEAR(rs.phase_resource_us.at("phase2").at("nic"), 150, 1e-12);
  EXPECT_NEAR(rs.rail_bytes.at("rail0"), 4096, 1e-12);
  EXPECT_NEAR(rs.rail_busy_us.at("rail0"), 0.4 * 250, 1e-9);
  EXPECT_NEAR(rs.counters.at("net_retries"), 2, 1e-12);
  ASSERT_EQ(rs.decisions.size(), 1u);
  EXPECT_EQ(rs.decisions[0], "ring");
}

}  // namespace
}  // namespace hmca::obs
