// Golden test over the observability name inventory (obs/names.hpp).
//
// The inventory is the contract between emitters and analyzers: a rename
// that touches only one side would silently drop a series from every
// report. This test pins the exact (name, kind) list — extending the
// inventory means extending kExpected in the same change — and checks the
// classification helpers the diff attribution depends on.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <utility>

#include "obs/names.hpp"
#include "trace/trace.hpp"

namespace hmca {
namespace {

namespace names = obs::names;

TEST(ObsNames, GoldenInventory) {
  // The full inventory, in fixed order. Every entry added to
  // names::all_names() must be mirrored here, so reviewers see renames.
  static const std::pair<std::string, std::string> kExpected[] = {
      {"net.rail.bytes", "counter"},
      {"net.rail.posts", "counter"},
      {"net.retries", "counter"},
      {"net.restripes", "counter"},
      {"net.rx_reroute", "counter"},
      {"shm.copy_bytes", "counter"},
      {"coll.task_retries", "counter"},
      {"core.offload_d", "gauge"},
      {"coll.pipeline_depth", "histogram"},
      {"net.rail", "track"},
      {"net.rail.health", "track"},
      {"sim.flows", "track"},
      {"net.rail.bytes", "derived-track"},
      {"net.rail.busy", "derived-track"},
      {"cpu.copy_busy", "derived-track"},
      {"shm.copy_bytes_per_s", "derived-track"},
      {"phase.occupancy", "derived-track"},
      {"phase1", "phase"},
      {"phase2", "phase"},
      {"phase3", "phase"},
      {"exchange", "phase"},
      {"select:", "prefix"},
      {"fault:", "prefix"},
      {"task:", "prefix"},
      {"node", "label-key"},
      {"rail", "label-key"},
      {"phase", "label-key"},
      {"rank", "label-key"},
      {"copy", "task-kind"},
      {"shm_in", "task-kind"},
      {"shm_out", "task-kind"},
      {"send", "task-kind"},
      {"recv", "task-kind"},
      {"cma", "task-kind"},
      {"rdma", "task-kind"},
      {"reduce", "task-kind"},
      {"wrapped", "task-kind"},
  };
  constexpr std::size_t kExpectedCount =
      sizeof(kExpected) / sizeof(kExpected[0]);

  std::size_t count = 0;
  const names::NameInfo* inv = names::all_names(&count);
  ASSERT_EQ(count, kExpectedCount);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(inv[i].name, kExpected[i].first) << "inventory index " << i;
    EXPECT_EQ(inv[i].kind, kExpected[i].second) << "inventory index " << i;
  }

  // (name, kind) pairs are unique — a duplicate entry would hide a missed
  // rename behind its twin.
  std::set<std::pair<std::string, std::string>> seen;
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(seen.emplace(inv[i].name, inv[i].kind).second)
        << "duplicate inventory entry: " << inv[i].name << " (" << inv[i].kind
        << ")";
  }
}

TEST(ObsNames, AnnotationPrefixes) {
  EXPECT_TRUE(names::is_annotation("select:allgather=ring"));
  EXPECT_TRUE(names::is_annotation("fault:rail1.degrade"));
  EXPECT_FALSE(names::is_annotation("phase2"));
  EXPECT_FALSE(names::is_annotation(""));
  EXPECT_FALSE(names::is_annotation("task:rdma:hca b1"));
}

TEST(ObsNames, StripChunk) {
  EXPECT_EQ(names::strip_chunk("task:send:p2#c3"), "task:send:p2");
  EXPECT_EQ(names::strip_chunk("task:send:p2#c31415"), "task:send:p2");
  // Non-numeric suffix after "#c" is part of the label, not a chunk id.
  EXPECT_EQ(names::strip_chunk("task:send:p2#cx"), "task:send:p2#cx");
  // A bare trailing "#c" is not a chunk suffix.
  EXPECT_EQ(names::strip_chunk("task:send:p2#c"), "task:send:p2#c");
  EXPECT_EQ(names::strip_chunk("no-suffix"), "no-suffix");
}

TEST(ObsNames, ResourceClassByKind) {
  using trace::Kind;
  EXPECT_STREQ(names::resource_class(Kind::kCompute), "cpu");
  EXPECT_STREQ(names::resource_class(Kind::kNicXfer), "nic");
  EXPECT_STREQ(names::resource_class(Kind::kIsend), "nic");
  EXPECT_STREQ(names::resource_class(Kind::kIrecv), "nic");
  EXPECT_STREQ(names::resource_class(Kind::kCopyIn), "shm");
  EXPECT_STREQ(names::resource_class(Kind::kCopyOut), "shm");
  EXPECT_STREQ(names::resource_class(Kind::kCmaCopy), "shm");
  EXPECT_STREQ(names::resource_class(Kind::kWait), "wait");
  // Containers carry no class of their own.
  EXPECT_STREQ(names::resource_class(Kind::kPhase), "");
  EXPECT_STREQ(names::resource_class(Kind::kTask), "");

  EXPECT_STREQ(names::resource_class_of_name("nic_xfer"), "nic");
  EXPECT_STREQ(names::resource_class_of_name("cma_copy"), "shm");
  EXPECT_STREQ(names::resource_class_of_name("no_such_kind"), "");
}

TEST(ObsNames, TaskResourceClass) {
  EXPECT_STREQ(names::task_resource_class("copy"), "cpu");
  EXPECT_STREQ(names::task_resource_class("reduce"), "cpu");
  EXPECT_STREQ(names::task_resource_class("send"), "nic");
  EXPECT_STREQ(names::task_resource_class("recv"), "nic");
  EXPECT_STREQ(names::task_resource_class("rdma"), "nic");
  EXPECT_STREQ(names::task_resource_class("shm_in"), "shm");
  EXPECT_STREQ(names::task_resource_class("shm_out"), "shm");
  EXPECT_STREQ(names::task_resource_class("cma"), "shm");
  // A wrapped legacy body spans every class — deliberately unclassified.
  EXPECT_STREQ(names::task_resource_class("wrapped"), "");
  EXPECT_STREQ(names::task_resource_class(""), "");
}

TEST(ObsNames, SpanResourceClassSeesThroughTasks) {
  using trace::Kind;
  // Task containers classify via the label's task-kind token.
  EXPECT_STREQ(names::span_resource_class(Kind::kTask, "task:rdma:hca b1"),
               "nic");
  EXPECT_STREQ(names::span_resource_class(Kind::kTask, "task:copy#c2"), "cpu");
  EXPECT_STREQ(names::span_resource_class(Kind::kTask, "task:shm_in:stage"),
               "shm");
  EXPECT_STREQ(names::span_resource_class(Kind::kTask, "task:wrapped:ring"),
               "");
  // A malformed task label stays unclassified rather than guessing.
  EXPECT_STREQ(names::span_resource_class(Kind::kTask, "not-a-task"), "");
  // Non-task spans classify by kind, label ignored.
  EXPECT_STREQ(names::span_resource_class(Kind::kNicXfer, "anything"), "nic");
  EXPECT_STREQ(names::span_resource_class(Kind::kPhase, "phase2"), "");
}

TEST(ObsNames, WrappedTaskContainers) {
  EXPECT_TRUE(names::is_wrapped_task("task:wrapped:bruck"));
  EXPECT_TRUE(names::is_wrapped_task("task:wrapped"));
  EXPECT_FALSE(names::is_wrapped_task("task:rdma:hca b1"));
  EXPECT_FALSE(names::is_wrapped_task("task:send:p2#c3"));
  EXPECT_FALSE(names::is_wrapped_task("wrapped"));
  EXPECT_FALSE(names::is_wrapped_task(""));
}

}  // namespace
}  // namespace hmca
