// perf/campaign.hpp + perf/runner.hpp: the campaign tables themselves and
// the determinism contract of the runner — two runs of the same build must
// produce a byte-identical simulated-metrics section, the comparator must
// accept a self-compare and reject a perturbed one.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "perf/campaign.hpp"
#include "perf/compare.hpp"
#include "perf/json.hpp"
#include "perf/runner.hpp"

namespace hmca::perf {
namespace {

RunOptions quiet_opts() {
  RunOptions opts;
  opts.label = "test";
  opts.wallclock = false;  // host throughput is irrelevant (and slow) here
  return opts;
}

TEST(PerfCampaign, BuiltinCampaignsValidate) {
  EXPECT_NO_THROW(validate_campaign(default_campaign()));
  EXPECT_NO_THROW(validate_campaign(smoke_campaign()));
  EXPECT_NO_THROW(validate_campaign(scale_campaign()));
  EXPECT_GE(default_campaign().scenarios.size(), 15u);
}

TEST(PerfCampaign, ScaleSweepsTheLargeWorlds) {
  // The simulator-core scale campaign must keep the 64/256/1024-node
  // worlds covered and probe wall-clock on the fig13 32-node shape.
  const Campaign& c = scale_campaign();
  for (const int nodes : {64, 256, 1024}) {
    bool found = false;
    for (const auto& sc : c.scenarios) found = found || sc.nodes == nodes;
    EXPECT_TRUE(found) << "no scenario with " << nodes << " nodes";
  }
  EXPECT_EQ(c.probe.nodes, 32);
  EXPECT_EQ(c.probe.ppn, 32);
}

TEST(PerfCampaign, DefaultCoversTheHeadlineFigures) {
  // The curated net tracks Figs. 1, 5, 8, 11-15 plus a degraded-rail run.
  for (const char* fig : {"fig01", "fig05", "fig08", "fig11", "fig12",
                          "fig13", "fig14", "fig15", "degraded"}) {
    bool found = false;
    for (const auto& sc : default_campaign().scenarios) {
      found = found || sc.figure == fig || sc.id.rfind(fig, 0) == 0;
    }
    EXPECT_TRUE(found) << "no scenario for " << fig;
  }
}

TEST(PerfCampaign, LookupByName) {
  ASSERT_NE(find_campaign("default"), nullptr);
  ASSERT_NE(find_campaign("smoke"), nullptr);
  ASSERT_NE(find_campaign("scale"), nullptr);
  EXPECT_EQ(find_campaign("nope"), nullptr);
  EXPECT_EQ(campaign_names().size(), 3u);
}

TEST(PerfCampaign, ValidateRejectsBrokenCampaigns) {
  Campaign c;
  c.name = "broken";
  EXPECT_THROW(validate_campaign(c), std::invalid_argument);  // empty

  Scenario s;
  s.id = "a";
  s.xs = {64};
  c.scenarios = {s, s};  // duplicate id
  EXPECT_THROW(validate_campaign(c), std::invalid_argument);

  s.xs.clear();  // empty sweep
  c.scenarios = {s};
  EXPECT_THROW(validate_campaign(c), std::invalid_argument);
}

TEST(PerfCampaign, FormatMetricIsDeterministicText) {
  EXPECT_EQ(format_metric(0), "0");
  EXPECT_EQ(format_metric(184972), "184972");
  EXPECT_EQ(format_metric(0.25), "0.25");
  EXPECT_EQ(format_metric(6.930174551), "6.93017455");  // 9 sig digits
}

TEST(PerfRunner, SmokeCampaignIsByteDeterministic) {
  const Report a = run_campaign(smoke_campaign(), quiet_opts());
  const Report b = run_campaign(smoke_campaign(), quiet_opts());
  ASSERT_EQ(a.scenarios.size(), smoke_campaign().scenarios.size());
  EXPECT_EQ(scenarios_json(a), scenarios_json(b));
}

TEST(PerfRunner, ScenariosJsonIsEmbeddedVerbatimInTheReport) {
  const Report r = run_campaign(smoke_campaign(), quiet_opts());
  std::ostringstream os;
  write_report_json(os, r);
  EXPECT_NE(os.str().find(scenarios_json(r)), std::string::npos);
  // And wallclock stays out of the deterministic section when disabled.
  EXPECT_EQ(os.str().find("wallclock"), std::string::npos);
}

TEST(PerfRunner, SelfCompareIsCleanPerturbedCompareFails) {
  const Report r = run_campaign(smoke_campaign(), quiet_opts());
  std::ostringstream base;
  write_report_json(base, r);

  Report tweaked = r;
  ASSERT_FALSE(tweaked.scenarios.empty());
  ASSERT_FALSE(tweaked.scenarios[0].points.empty());
  auto& metrics = tweaked.scenarios[0].points[0].metrics;
  ASSERT_TRUE(metrics.count("latency_us"));
  metrics["latency_us"] *= 1.10;  // injected 10% latency regression
  std::ostringstream next;
  write_report_json(next, tweaked);

  const Json jb = Json::parse(base.str());
  const Json jn = Json::parse(next.str());
  EXPECT_TRUE(compare_reports(jb, jb, {}).ok());

  const CompareResult bad = compare_reports(jb, jn, {});
  EXPECT_FALSE(bad.ok());
  ASSERT_GE(bad.failures(), 1);
  EXPECT_NE(bad.findings[0].text.find("regression"), std::string::npos);

  CompareOptions bless;
  bless.bless = true;
  EXPECT_TRUE(compare_reports(jb, jn, bless).ok());
}

TEST(PerfRunner, UnknownSubjectFailsLoudly) {
  Campaign c;
  c.name = "bad-subject";
  Scenario s;
  s.id = "x";
  s.subject = "no-such-profile";
  s.xs = {64};
  c.scenarios = {s};
  EXPECT_THROW(run_campaign(c, quiet_opts()), std::invalid_argument);
}

TEST(PerfRunner, DegradedScenarioAvoidsTheDeadRail) {
  // The default campaign's degraded run must actually exercise the fault
  // path: with hca=1 killed at t=0 all traffic lands on rail 0 and the run
  // is slower than its healthy twin.
  for (const auto& sc : default_campaign().scenarios) {
    if (sc.faults.empty()) continue;
    Campaign pair;
    pair.name = "pair";
    Scenario healthy = sc;
    healthy.id = "healthy";
    healthy.faults.clear();
    pair.scenarios = {sc, healthy};
    const Report r = run_campaign(pair, quiet_opts());
    ASSERT_EQ(r.scenarios.size(), 2u);
    for (std::size_t i = 0; i < r.scenarios[0].points.size(); ++i) {
      const auto& faulted = r.scenarios[0].points[i].metrics;
      const auto& intact = r.scenarios[1].points[i].metrics;
      EXPECT_EQ(faulted.count("net_rail1_bytes"), 0u);  // rail 1 is dead
      ASSERT_TRUE(intact.count("net_rail1_bytes"));
      EXPECT_GT(intact.at("net_rail1_bytes"), 0.0);
      EXPECT_GT(faulted.at("latency_us"), intact.at("latency_us"));
    }
    return;
  }
  FAIL() << "default campaign has no faulted scenario";
}

}  // namespace
}  // namespace hmca::perf
