// Artifact loaders for the diff attribution (perf/diff_io.hpp) on
// handwritten documents: family sniffing, each loader's RunSummary
// reconstruction, transcript recovery, and the end-to-end diff_artifacts
// path including the cross-family note and world-mismatch flag.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/diff.hpp"
#include "perf/diff_io.hpp"
#include "perf/json.hpp"

namespace hmca::perf {
namespace {

// A minimal stats document: one invocation with critical-path steps (one
// task step, one wait step), utilization rails and a counter.
const char* kStatsDoc = R"({
  "bench": "osu_allgather",
  "provenance": {"git_sha": "abc1234", "seed": "42"},
  "invocations": [
    {
      "op": "allgather", "subject": "mha", "msg_bytes": 65536,
      "latency_us": 200.0, "phase_overlap_fraction": 0.25,
      "world": "nodes=2,ppn=2,hcas=2,sockets=1",
      "selector_decisions": ["allgather=ring,cost"],
      "critical_path": {
        "total_us": 150.0,
        "by_phase_us": {"phase1": 50.0, "phase2": 100.0},
        "steps": [
          {"rank": 0, "kind": "task", "t0_us": 0.0, "dur_us": 100.0,
           "peer": -1, "bytes": 65536, "label": "task:rdma:hca b1#c2",
           "phase": "phase2"},
          {"rank": 0, "kind": "cma_copy", "t0_us": 100.0, "dur_us": 50.0,
           "peer": -1, "bytes": 65536, "label": "", "phase": "phase1"}
        ]
      },
      "utilization": {
        "wall_us": 200.0,
        "rails": [
          {"node": 0, "rail": 0, "busy_frac": 0.5, "bytes": 1000},
          {"node": 0, "rail": 1, "busy_frac": 0.25, "bytes": 500}
        ],
        "rail_phases": [
          {"phase": "phase2", "node": 0, "rail": 1, "busy_us": 50.0}
        ]
      },
      "metrics": {"counters": [{"name": "net.retries", "value": 3}]}
    }
  ]
})";

const char* kBenchDoc = R"({
  "format": "hmca-bench-1",
  "campaign": "default",
  "label": "seed",
  "environment": {"compiler": "g++"},
  "scenarios": [
    {
      "id": "fig13", "figure": "fig13", "kind": "allgather",
      "subject": "mha", "nodes": 2, "ppn": 2, "hcas": 2, "topo": "",
      "points": [
        {"x": 65536, "decision": "allgather=ring,cost",
         "metrics": {"latency_us": 200.0, "critical_path_us": 150.0,
                     "cp_phase_phase2_us": 100.0,
                     "cp_class_nic_us": 100.0,
                     "cp_cell_phase2_nic_us": 100.0}}
      ]
    }
  ]
})";

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(DiffIo, SniffsAllThreeFamilies) {
  EXPECT_EQ(sniff_artifact(Json::parse(kStatsDoc)), "stats");
  EXPECT_EQ(sniff_artifact(Json::parse(kBenchDoc)), "bench");
  EXPECT_EQ(sniff_artifact(Json::parse(R"({"traceEvents": []})")), "trace");
  EXPECT_THROW(sniff_artifact(Json::parse(R"({"foo": 1})")),
               std::invalid_argument);
}

TEST(DiffIo, LoadsStatsRunWithTaskAwareClasses) {
  const LoadedRun lr = load_stats_run(Json::parse(kStatsDoc), "stats.json");
  EXPECT_EQ(lr.format, "stats");
  EXPECT_EQ(lr.label, "osu_allgather");
  ASSERT_EQ(lr.provenance.size(), 2u);
  EXPECT_EQ(lr.provenance[0].first, "git_sha");
  ASSERT_EQ(lr.runs.size(), 1u);
  const obs::RunSummary& rs = lr.runs[0];
  EXPECT_EQ(rs.key(), "allgather/mha/65536");
  EXPECT_EQ(rs.world, "nodes=2,ppn=2,hcas=2,sockets=1");
  EXPECT_NEAR(rs.latency_us, 200, 1e-12);
  EXPECT_NEAR(rs.critical_path_us, 150, 1e-12);
  EXPECT_NEAR(rs.phase_us.at("phase2"), 100, 1e-12);
  // The task step classifies via its label token (rdma -> nic), the
  // cma_copy step via its kind (-> shm).
  EXPECT_NEAR(rs.resource_us.at("nic"), 100, 1e-12);
  EXPECT_NEAR(rs.resource_us.at("shm"), 50, 1e-12);
  EXPECT_NEAR(rs.phase_resource_us.at("phase2").at("nic"), 100, 1e-12);
  // Chunk suffix stripped from the task label.
  EXPECT_NEAR(rs.task_us.at("task:rdma:hca b1"), 100, 1e-12);
  // busy_frac scales by wall_us.
  EXPECT_NEAR(rs.rail_busy_us.at("node0/rail0"), 100, 1e-12);
  EXPECT_NEAR(rs.rail_busy_us.at("node0/rail1"), 50, 1e-12);
  EXPECT_NEAR(rs.phase_rail_busy_us.at("phase2").at("node0/rail1"), 50,
              1e-12);
  EXPECT_NEAR(rs.counters.at("net.retries"), 3, 1e-12);
  ASSERT_EQ(rs.decisions.size(), 1u);
  EXPECT_EQ(rs.decisions[0], "allgather=ring,cost");
}

TEST(DiffIo, LoadsBenchRunWithReconstructedWorld) {
  const LoadedRun lr = load_bench_run(Json::parse(kBenchDoc), "bench.json");
  EXPECT_EQ(lr.format, "bench");
  EXPECT_EQ(lr.label, "seed");
  ASSERT_FALSE(lr.provenance.empty());
  EXPECT_EQ(lr.provenance[0].first, "campaign");
  ASSERT_EQ(lr.runs.size(), 1u);
  const obs::RunSummary& rs = lr.runs[0];
  // Subject "mha" is the selector default and is not appended, so the key
  // matches a stats run of the same scenario family.
  EXPECT_EQ(rs.key(), "allgather/fig13/65536");
  // The reconstructed fingerprint must equal what a stats run of the same
  // shape carries (2 nodes x 2 ppn, dual rail).
  EXPECT_EQ(rs.world, "nodes=2,ppn=2,hcas=2,sockets=1");
  EXPECT_NEAR(rs.phase_resource_us.at("phase2").at("nic"), 100, 1e-12);
  ASSERT_EQ(rs.decisions.size(), 1u);
  EXPECT_EQ(rs.decisions[0], "allgather=ring,cost");
}

TEST(DiffIo, LoadsTraceRunThroughLiveSummarizer) {
  const char* doc = R"({
    "traceEvents": [
      {"ph": "M", "name": "process_name"},
      {"ph": "X", "tid": 0, "ts": 0.0, "dur": 100.0, "cat": "task",
       "args": {"kind": "task", "peer": -1, "bytes": 65536,
                "label": "task:rdma:hca b1#c0"}},
      {"ph": "X", "tid": 0, "ts": 0.0, "dur": 150.0, "cat": "phase",
       "args": {"kind": "phase", "label": "phase2"}}
    ]
  })";
  const LoadedRun lr = load_trace_run(Json::parse(doc), "trace.json");
  ASSERT_EQ(lr.runs.size(), 1u);
  const obs::RunSummary& rs = lr.runs[0];
  // Wall = latest span end = the 150 us phase window.
  EXPECT_NEAR(rs.latency_us, 150, 1e-6);
  EXPECT_NEAR(rs.resource_us.at("nic"), 100, 1e-6);
  EXPECT_NEAR(rs.phase_resource_us.at("phase2").at("nic"), 100, 1e-6);
}

TEST(DiffIo, LoadRunArtifactRecoversStatsTranscript) {
  const std::string path = write_temp(
      "diffio_transcript.txt",
      "# OSU latency table\n64 1.23\n128 2.34\n\n" + std::string(kStatsDoc) +
          "\n");
  const LoadedRun lr = load_run_artifact(path);
  EXPECT_EQ(lr.format, "stats");
  ASSERT_EQ(lr.runs.size(), 1u);
  EXPECT_NEAR(lr.runs[0].latency_us, 200, 1e-12);
}

TEST(DiffIo, DiffArtifactsCrossFamilyAlignsAndNotes) {
  // A stats run against a bench run: keys differ ("mha" vs "fig13"
  // subject), so nothing aligns — but the cross-family note and both
  // provenance blocks must still surface.
  const std::string a = write_temp("diffio_a.json", kStatsDoc);
  const std::string b = write_temp("diffio_b.json", kBenchDoc);
  const obs::DiffReport rep = diff_artifacts(a, b);
  EXPECT_EQ(rep.base_label, a);
  EXPECT_EQ(rep.next_label, b);
  ASSERT_FALSE(rep.notes.empty());
  EXPECT_NE(rep.notes[0].find("cross-family diff"), std::string::npos);
  EXPECT_FALSE(rep.base_provenance.empty());
  EXPECT_FALSE(rep.next_provenance.empty());
}

TEST(DiffIo, DiffArtifactsFlagsWorldMismatch) {
  // Same key, different world: the pair aligns but is flagged as a shape
  // change rather than attributed as a regression.
  std::string next_doc = kStatsDoc;
  const std::string from = "nodes=2,ppn=2,hcas=2,sockets=1";
  next_doc.replace(next_doc.find(from), from.size(),
                   "nodes=4,ppn=2,hcas=2,sockets=1");
  const std::string a = write_temp("diffio_w1.json", kStatsDoc);
  const std::string b = write_temp("diffio_w2.json", next_doc);
  const obs::DiffReport rep = diff_artifacts(a, b);
  ASSERT_EQ(rep.invocations.size(), 1u);
  EXPECT_TRUE(rep.has_world_mismatch());
}

TEST(DiffIo, IdenticalArtifactsDiffToNoAttributions) {
  const std::string a = write_temp("diffio_same_a.json", kStatsDoc);
  const std::string b = write_temp("diffio_same_b.json", kStatsDoc);
  const obs::DiffReport rep = diff_artifacts(a, b);
  ASSERT_EQ(rep.invocations.size(), 1u);
  EXPECT_EQ(rep.invocations[0].delta_us, 0.0);
  for (const auto& attr : rep.invocations[0].attributions) {
    EXPECT_NE(attr.unit, "us") << attr.category << " " << attr.name;
  }
  // Deterministic bytes for the loaded-and-diffed report too.
  std::ostringstream j1, j2;
  rep.write_json(j1);
  diff_artifacts(a, b).write_json(j2);
  EXPECT_EQ(j1.str(), j2.str());
}

}  // namespace
}  // namespace hmca::perf
