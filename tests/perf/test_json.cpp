// perf/json.hpp: the minimal JSON reader the baseline comparator diffs
// BENCH_*.json files with.
#include "perf/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace hmca::perf {
namespace {

TEST(PerfJson, ParsesPrimitives) {
  EXPECT_EQ(Json::parse("null").type(), Json::Type::kNull);
  EXPECT_TRUE(Json::parse("true").boolean());
  EXPECT_FALSE(Json::parse("false").boolean());
  EXPECT_DOUBLE_EQ(Json::parse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").number(), -350.0);
  EXPECT_DOUBLE_EQ(Json::parse("0.125").number(), 0.125);
  EXPECT_EQ(Json::parse("\"hi\"").string(), "hi");
}

TEST(PerfJson, ParsesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d")").string(), "a\"b\\c/d");
  EXPECT_EQ(Json::parse(R"("x\ny\tz")").string(), "x\ny\tz");
}

TEST(PerfJson, RejectsUnicodeEscapes) {
  EXPECT_THROW(Json::parse("\"\\u0041\""), JsonError);
}

TEST(PerfJson, ParsesArraysAndObjects) {
  const Json v = Json::parse(R"({"a": [1, 2, 3], "b": {"c": "d"}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.at("a").array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").array()[1].number(), 2.0);
  EXPECT_EQ(v.at("b").string_at("c"), "d");
  EXPECT_THROW(v.number_at("a"), JsonError);
}

TEST(PerfJson, ObjectPreservesInsertionOrder) {
  const Json v = Json::parse(R"({"zz": 1, "aa": 2, "mm": 3})");
  const auto& obj = v.object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "zz");
  EXPECT_EQ(obj[1].first, "aa");
  EXPECT_EQ(obj[2].first, "mm");
}

TEST(PerfJson, FindReturnsNullptrAtThrows) {
  const Json v = Json::parse(R"({"x": 1})");
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_THROW(v.at("y"), JsonError);
  EXPECT_EQ(Json::parse("[1]").find("x"), nullptr);
}

TEST(PerfJson, TypedReadsThrowOnMismatch) {
  const Json v = Json::parse(R"({"s": "str", "n": 1})");
  EXPECT_THROW(v.at("s").number(), JsonError);
  EXPECT_THROW(v.at("n").string(), JsonError);
  EXPECT_THROW(v.at("n").array(), JsonError);
  EXPECT_THROW(v.at("n").object(), JsonError);
  EXPECT_THROW(v.at("n").boolean(), JsonError);
}

TEST(PerfJson, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing non-whitespace
}

TEST(PerfJson, AcceptsTrailingWhitespace) {
  EXPECT_DOUBLE_EQ(Json::parse(" 7 \n").number(), 7.0);
}

TEST(PerfJson, ParseJsonFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "perf_json_test.json";
  {
    std::ofstream os(path);
    os << R"({"format": "hmca-bench-1", "scenarios": []})";
  }
  const Json v = parse_json_file(path);
  EXPECT_EQ(v.string_at("format"), "hmca-bench-1");
  EXPECT_TRUE(v.at("scenarios").is_array());
  std::remove(path.c_str());
}

TEST(PerfJson, ParseJsonFileThrowsOnMissingPath) {
  EXPECT_THROW(parse_json_file("/nonexistent/dir/nope.json"), JsonError);
}

}  // namespace
}  // namespace hmca::perf
