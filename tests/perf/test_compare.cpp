// perf/compare.hpp: the baseline comparator behind `hmca-bench compare` and
// the CI perf gate. Documents are handwritten here so every edge — epsilon
// boundaries, scenario-set changes, the bless flow, the noise-aware
// wall-clock gate — is pinned independently of the runner.
#include "perf/compare.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace hmca::perf {
namespace {

std::string scenario_block(const std::string& id, const std::string& points,
                           int nodes = 2) {
  return R"({
      "id": ")" + id + R"(",
      "figure": "fig11",
      "kind": "allgather",
      "subject": "mha",
      "nodes": )" + std::to_string(nodes) + R"(,
      "ppn": 2,
      "hcas": 0,
      "faults": "",
      "msg_bytes": 0,
      "points": [)" + points + R"(]
    })";
}

std::string point_block(std::size_t x, const std::string& metrics) {
  return R"({"x": )" + std::to_string(x) + R"(, "metrics": {)" + metrics +
         "}}";
}

std::string wallclock_block(double median, double mad,
                            const std::string& probe = "p",
                            std::uint64_t peak_rss = 0) {
  std::ostringstream os;
  os << R"({"probe": ")" << probe << R"(", "repeats": 3, "events": 100,
            "samples_events_per_sec": [)" << median << R"(],
            "median_events_per_sec": )" << median << R"(,
            "mad_events_per_sec": )" << mad;
  if (peak_rss > 0) os << R"(, "peak_rss_bytes": )" << peak_rss;
  os << "}";
  return os.str();
}

std::string report_doc(const std::string& scenarios,
                       const std::string& fingerprint = "fp",
                       const std::string& wallclock = "") {
  std::string doc = R"({
    "format": "hmca-bench-1",
    "label": "t",
    "campaign": "c",
    "environment": {"git_sha": "s", "compiler": "g", "build_type": "R",
                    "os": "L", "arch": "x", "fingerprint": ")" + fingerprint +
                    R"("},
    "scenarios": [)" + scenarios + "]";
  if (!wallclock.empty()) doc += ",\n  \"wallclock\": " + wallclock;
  return doc + "\n}";
}

std::string one_latency_report(double latency) {
  std::ostringstream m;
  m.precision(17);  // default precision 6 would flatten sub-1e-6 drift
  m << "\"latency_us\": " << latency;
  return report_doc(scenario_block("s1", point_block(65536, m.str())));
}

CompareResult run(const std::string& base, const std::string& next,
                  const CompareOptions& opts = {}) {
  return compare_reports(Json::parse(base), Json::parse(next), opts);
}

TEST(PerfCompare, IdenticalReportsPass) {
  const std::string doc = one_latency_report(12.5);
  const CompareResult r = run(doc, doc);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.scenarios_compared, 1);
  EXPECT_EQ(r.metrics_compared, 1);
}

TEST(PerfCompare, RejectsNonReportDocuments) {
  const std::string good = one_latency_report(1.0);
  EXPECT_THROW(run("{\"format\": \"other\"}", good), JsonError);
  EXPECT_THROW(run(good, "{\"scenarios\": []}"), JsonError);
}

TEST(PerfCompare, DriftWithinRelativeEpsilonPasses) {
  // 1e-8 relative drift on a value of 100: below the 1e-7 gate.
  const CompareResult r =
      run(one_latency_report(100.0), one_latency_report(100.000001));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.findings.empty());
}

TEST(PerfCompare, DriftAboveRelativeEpsilonFails) {
  // 1e-6 relative drift: an order of magnitude above the gate.
  const CompareResult r =
      run(one_latency_report(100.0), one_latency_report(100.0001));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures(), 1);
  EXPECT_NE(r.findings[0].text.find("latency_us"), std::string::npos);
  EXPECT_NE(r.findings[0].text.find("regression"), std::string::npos);
  EXPECT_EQ(r.findings[0].scenario, "s1");
}

TEST(PerfCompare, ImprovementIsStillDrift) {
  // Faster is still a model change: the baseline must be re-blessed.
  const CompareResult r =
      run(one_latency_report(100.0), one_latency_report(90.0));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.findings[0].text.find("improvement"), std::string::npos);
}

TEST(PerfCompare, AbsoluteFloorAbsorbsTinyValues) {
  // Near-zero metrics: relative epsilon explodes, the absolute floor holds.
  const CompareResult r =
      run(one_latency_report(1e-12), one_latency_report(5e-10));
  EXPECT_TRUE(r.ok());
}

TEST(PerfCompare, BlessAcceptsDrift) {
  CompareOptions opts;
  opts.bless = true;
  const CompareResult r =
      run(one_latency_report(100.0), one_latency_report(150.0), opts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.failures(), 0);
  EXPECT_EQ(r.blessed(), 1);
}

TEST(PerfCompare, MissingScenarioFailsAndBlessAccepts) {
  const std::string two = report_doc(
      scenario_block("s1", point_block(64, "\"latency_us\": 1")) + ",\n" +
      scenario_block("s2", point_block(64, "\"latency_us\": 2")));
  const std::string one =
      report_doc(scenario_block("s1", point_block(64, "\"latency_us\": 1")));
  const CompareResult r = run(two, one);
  ASSERT_EQ(r.failures(), 1);
  EXPECT_EQ(r.findings[0].scenario, "s2");
  EXPECT_NE(r.findings[0].text.find("missing"), std::string::npos);

  CompareOptions opts;
  opts.bless = true;
  EXPECT_TRUE(run(two, one, opts).ok());
}

TEST(PerfCompare, ExtraScenarioIsAlsoDrift) {
  const std::string one =
      report_doc(scenario_block("s1", point_block(64, "\"latency_us\": 1")));
  const std::string two = report_doc(
      scenario_block("s1", point_block(64, "\"latency_us\": 1")) + ",\n" +
      scenario_block("s2", point_block(64, "\"latency_us\": 2")));
  const CompareResult r = run(one, two);
  ASSERT_EQ(r.failures(), 1);
  EXPECT_NE(r.findings[0].text.find("not in baseline"), std::string::npos);
}

TEST(PerfCompare, MissingAndExtraSweepPointsFail) {
  const std::string base = report_doc(scenario_block(
      "s1", point_block(64, "\"latency_us\": 1") + ", " +
                point_block(128, "\"latency_us\": 2")));
  const std::string next = report_doc(scenario_block(
      "s1", point_block(64, "\"latency_us\": 1") + ", " +
                point_block(256, "\"latency_us\": 4")));
  const CompareResult r = run(base, next);
  EXPECT_EQ(r.failures(), 2);  // x=128 disappeared, x=256 new
}

TEST(PerfCompare, MissingAndNewMetricsFail) {
  const std::string base = report_doc(scenario_block(
      "s1", point_block(64, "\"latency_us\": 1, \"net_retries\": 0")));
  const std::string next = report_doc(scenario_block(
      "s1", point_block(64, "\"latency_us\": 1, \"shm_copy_bytes\": 8")));
  const CompareResult r = run(base, next);
  EXPECT_EQ(r.failures(), 2);  // net_retries disappeared, shm_copy_bytes new
}

TEST(PerfCompare, ShapeFieldChangeFails) {
  const std::string base =
      report_doc(scenario_block("s1", point_block(64, "\"latency_us\": 1"), 2));
  const std::string next =
      report_doc(scenario_block("s1", point_block(64, "\"latency_us\": 1"), 4));
  const CompareResult r = run(base, next);
  ASSERT_EQ(r.failures(), 1);
  EXPECT_NE(r.findings[0].text.find("nodes changed"), std::string::npos);
}

TEST(PerfCompare, WallclockDropBeyondThresholdFails) {
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  const std::string base =
      report_doc(sc, "fp", wallclock_block(1000.0, 10.0));
  const std::string next = report_doc(sc, "fp", wallclock_block(600.0, 10.0));
  const CompareResult r = run(base, next);  // -40% vs 25% threshold
  ASSERT_EQ(r.failures(), 1);
  EXPECT_NE(r.findings[0].text.find("wallclock"), std::string::npos);
}

TEST(PerfCompare, WallclockDropWithinThresholdPasses) {
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  const std::string base =
      report_doc(sc, "fp", wallclock_block(1000.0, 10.0));
  const std::string next = report_doc(sc, "fp", wallclock_block(850.0, 10.0));
  EXPECT_TRUE(run(base, next).ok());  // -15% vs 25% threshold
}

TEST(PerfCompare, WallclockMadWidensTheThreshold) {
  // -40% drop, but MAD says the machine is that noisy: 3*150/1000 = 45%.
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  const std::string base =
      report_doc(sc, "fp", wallclock_block(1000.0, 150.0));
  const std::string next = report_doc(sc, "fp", wallclock_block(600.0, 10.0));
  EXPECT_TRUE(run(base, next).ok());
}

TEST(PerfCompare, ForeignFingerprintWallclockIsInformational) {
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  const std::string base =
      report_doc(sc, "laptop", wallclock_block(1000.0, 10.0));
  const std::string next = report_doc(sc, "ci", wallclock_block(100.0, 10.0));
  const CompareResult r = run(base, next);  // -90%, but incomparable hosts
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].level, Finding::Level::kInfo);
  EXPECT_NE(r.findings[0].text.find("fingerprints differ"), std::string::npos);
}

TEST(PerfCompare, DifferingProbesAreInformational) {
  // A default-campaign baseline must never gate a scale-campaign report:
  // the probe workloads differ, so events/sec are incomparable.
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  const std::string base =
      report_doc(sc, "fp", wallclock_block(1000.0, 10.0, "small world"));
  const std::string next =
      report_doc(sc, "fp", wallclock_block(100.0, 10.0, "big world"));
  const CompareResult r = run(base, next);  // -90%, but different probes
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].level, Finding::Level::kInfo);
  EXPECT_NE(r.findings[0].text.find("probe workloads differ"),
            std::string::npos);
}

TEST(PerfCompare, PeakRssGrowthBeyondThresholdFails) {
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  const std::string base = report_doc(
      sc, "fp", wallclock_block(1000.0, 10.0, "p", 100'000'000));
  const std::string next = report_doc(
      sc, "fp", wallclock_block(1000.0, 10.0, "p", 150'000'000));
  const CompareResult r = run(base, next);  // +50% RSS vs 25% threshold
  ASSERT_EQ(r.failures(), 1);
  EXPECT_NE(r.findings[0].text.find("peak RSS"), std::string::npos);
}

TEST(PerfCompare, PeakRssWithinThresholdAndLegacyBaselinesPass) {
  const std::string sc =
      scenario_block("s1", point_block(64, "\"latency_us\": 1"));
  // +10% growth: within the threshold.
  EXPECT_TRUE(run(report_doc(sc, "fp",
                             wallclock_block(1000.0, 10.0, "p", 100'000'000)),
                  report_doc(sc, "fp",
                             wallclock_block(1000.0, 10.0, "p", 110'000'000)))
                  .ok());
  // Baseline predates the field: RSS must not gate at all.
  EXPECT_TRUE(run(report_doc(sc, "fp", wallclock_block(1000.0, 10.0)),
                  report_doc(sc, "fp",
                             wallclock_block(1000.0, 10.0, "p", 900'000'000)))
                  .ok());
}

TEST(PerfCompare, AttributionExplainsLatencyDrift) {
  // A point whose latency drifted and whose critical-path cells moved with
  // it: the comparator must not just flag the drift but explain it, and the
  // injected cause (phase2/nic grew by +48 us of a +50 us delta) must rank
  // ahead of the near-flat phase1/shm cell.
  const auto doc = [](double latency, double p2_nic, double p1_shm) {
    std::ostringstream m;
    m << "\"latency_us\": " << latency
      << ", \"critical_path_us\": " << (p2_nic + p1_shm)
      << ", \"cp_phase_phase1_us\": " << p1_shm
      << ", \"cp_phase_phase2_us\": " << p2_nic
      << ", \"cp_class_nic_us\": " << p2_nic
      << ", \"cp_class_shm_us\": " << p1_shm
      << ", \"cp_cell_phase1_shm_us\": " << p1_shm
      << ", \"cp_cell_phase2_nic_us\": " << p2_nic;
    return report_doc(scenario_block("s1", point_block(65536, m.str())));
  };
  const CompareResult r = run(doc(100.0, 60.0, 20.0), doc(150.0, 108.0, 22.0));
  EXPECT_FALSE(r.ok());

  ASSERT_EQ(r.attribution.invocations.size(), 1u);
  const auto& inv = r.attribution.invocations[0];
  EXPECT_DOUBLE_EQ(inv.delta_us, 50.0);
  EXPECT_NE(inv.headline().find("phase2/nic"), std::string::npos)
      << inv.headline();
  ASSERT_FALSE(inv.attributions.empty());
  // The top-ranked attribution is the injected cause, not the bystander.
  EXPECT_NE(inv.attributions[0].name.find("phase2"), std::string::npos);
  EXPECT_EQ(inv.attributions[0].unit, "us");
  EXPECT_NEAR(inv.attributions[0].delta, 48.0, 1e-9);
  EXPECT_NEAR(inv.attributions[0].share, 0.96, 1e-9);

  // The explanation surfaces as informational findings next to the drift.
  bool saw_headline = false;
  bool saw_cell = false;
  for (const auto& f : r.findings) {
    if (f.level != Finding::Level::kInfo) continue;
    if (f.text.rfind("attribution: ", 0) == 0) saw_headline = true;
    if (f.text.find("phase.resource phase2/nic") != std::string::npos &&
        f.text.find("% of delta") != std::string::npos) {
      saw_cell = true;
    }
  }
  EXPECT_TRUE(saw_headline);
  EXPECT_TRUE(saw_cell);
}

TEST(PerfCompare, AttributionRanksDecisionChangeFirst) {
  // A changed selector decision owns the whole delta: everything downstream
  // of a different algorithm choice is its consequence, so it outranks any
  // critical-path margin.
  const auto doc = [](double latency, const std::string& algo) {
    std::ostringstream m;
    m.precision(17);
    m << R"({"x": 64, "decision": "allgather=)" << algo
      << R"(,selector", "metrics": {"latency_us": )" << latency
      << ", \"cp_class_nic_us\": " << latency * 0.5 << "}}";
    return report_doc(scenario_block("s1", m.str()));
  };
  const CompareResult r = run(doc(100.0, "ring"), doc(140.0, "hier3"));
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.attribution.invocations.size(), 1u);
  const auto& inv = r.attribution.invocations[0];
  ASSERT_FALSE(inv.attributions.empty());
  EXPECT_EQ(inv.attributions[0].category, "decision");
  EXPECT_EQ(inv.attributions[0].name, "allgather");
  EXPECT_DOUBLE_EQ(inv.attributions[0].share, 1.0);
  EXPECT_NE(inv.attributions[0].note.find("ring"), std::string::npos);
  EXPECT_NE(inv.attributions[0].note.find("hier3"), std::string::npos);

  bool saw_decision_line = false;
  for (const auto& f : r.findings) {
    if (f.level == Finding::Level::kInfo &&
        f.text.find("decision allgather:") != std::string::npos) {
      saw_decision_line = true;
    }
  }
  EXPECT_TRUE(saw_decision_line);
}

TEST(PerfCompare, AttributionDisabledWithZeroTopK) {
  CompareOptions opts;
  opts.attribution_top_k = 0;
  const CompareResult r =
      run(one_latency_report(100.0), one_latency_report(150.0), opts);
  EXPECT_FALSE(r.ok());  // drift still gates; only the explanation is off
  EXPECT_TRUE(r.attribution.invocations.empty());
  for (const auto& f : r.findings) {
    EXPECT_EQ(f.text.rfind("attribution: ", 0), std::string::npos) << f.text;
  }
}

TEST(PerfCompare, ReportNamesVerdicts) {
  const auto render = [](const CompareResult& r) {
    std::ostringstream os;
    write_compare_report(os, r, "a.json", "b.json");
    return os.str();
  };
  const std::string doc = one_latency_report(1.0);
  EXPECT_NE(render(run(doc, doc)).find("verdict: OK (no drift)"),
            std::string::npos);
  EXPECT_NE(render(run(doc, one_latency_report(2.0))).find("verdict: FAIL"),
            std::string::npos);
  CompareOptions opts;
  opts.bless = true;
  EXPECT_NE(
      render(run(doc, one_latency_report(2.0), opts)).find("blessed drift"),
      std::string::npos);
}

}  // namespace
}  // namespace hmca::perf
