// The selection engine: threshold decisions must match the paper's defaults
// (MhaTuning cutoffs, the Fig. 8 RD/Ring crossover), env overrides must pin
// registry entries, tuning tables and the cost model must take precedence
// in the documented order, and every decision must leave a kPhase trace
// span naming the algorithm and the reason.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "testing/coll_testing.hpp"
#include "trace/trace.hpp"

namespace hmca::core {
namespace {

using hmca::testing::check_allgather;

/// RAII setenv/unsetenv so a failing assertion cannot leak the override
/// into later tests in the same process.
class EnvGuard {
 public:
  EnvGuard(const char* var, const char* value) : var_(var) {
    ::setenv(var, value, /*overwrite=*/1);
  }
  ~EnvGuard() { ::unsetenv(var_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* var_;
};

/// Build a world and ask the default selector what it would run.
AllgatherSelection select_ag(int nodes, int ppn, std::size_t msg,
                             trace::Tracer* tracer = nullptr,
                             const Selector* sel = nullptr) {
  const auto spec = hw::ClusterSpec::thor(nodes, ppn);
  sim::Engine eng;
  mpi::World world(eng, spec, tracer);
  if (sel == nullptr) sel = &default_selector();
  return sel->select_allgather(world.comm_world(), 0, msg);
}

AllreduceSelection select_ar(int nodes, int ppn, std::size_t count,
                             const Selector* sel = nullptr) {
  const auto spec = hw::ClusterSpec::thor(nodes, ppn);
  sim::Engine eng;
  mpi::World world(eng, spec);
  if (sel == nullptr) sel = &default_selector();
  return sel->select_allreduce(world.comm_world(), 0, count,
                               mpi::Dtype::kFloat);
}

// ---- Table-driven threshold sweep: msg size x node count x ppn ----
//
// Expectations encode the paper's defaults: the MhaTuning 16 KB intra
// cutoff, and the Fig. 8 RD/Ring crossover at a phase-2 chunk (msg * ppn)
// of 16 KB with RD requiring a power-of-two node count.

struct Case {
  int nodes;
  int ppn;
  std::size_t msg;
  const char* algo;
  const char* reason;
};

class ThresholdSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ThresholdSweep, PicksThePaperDefault) {
  const Case c = GetParam();
  const auto sel = select_ag(c.nodes, c.ppn, c.msg);
  EXPECT_EQ(sel.name(), c.algo) << "nodes=" << c.nodes << " ppn=" << c.ppn
                                << " msg=" << c.msg;
  EXPECT_EQ(sel.reason, c.reason);
}

INSTANTIATE_TEST_SUITE_P(
    PaperDefaults, ThresholdSweep,
    ::testing::Values(
        // Single node: conventional below the 16 KB cutoff, MHA-intra at
        // and above it.
        Case{1, 4, 1024, "rd_or_bruck", "allgather:threshold:intra-small"},
        Case{1, 4, 16383, "rd_or_bruck", "allgather:threshold:intra-small"},
        Case{1, 4, 16384, "mha_intra", "allgather:threshold:intra-large"},
        Case{1, 16, 1u << 20, "mha_intra", "allgather:threshold:intra-large"},
        // Multi-node: Fig. 8 — RD while chunk = msg*ppn <= 16 KB...
        Case{2, 16, 512, "mha_inter_rd", "allgather:threshold:fig8-rd"},
        Case{2, 16, 1024, "mha_inter_rd", "allgather:threshold:fig8-rd"},  // 16 KB edge
        // ... Ring above the crossover ...
        Case{2, 16, 2048, "mha_inter_ring", "allgather:threshold:fig8-ring"},
        Case{4, 32, 4096, "mha_inter_ring", "allgather:threshold:fig8-ring"},
        // ... and Ring whenever the node count is not a power of two.
        Case{3, 2, 64, "mha_inter_ring", "allgather:threshold:fig8-ring"},
        Case{3, 2, 262144, "mha_inter_ring", "allgather:threshold:fig8-ring"},
        // 1 PPN still follows the chunk rule (chunk = msg).
        Case{8, 1, 4096, "mha_inter_rd", "allgather:threshold:fig8-rd"},
        Case{8, 1, 65536, "mha_inter_ring", "allgather:threshold:fig8-ring"}));

TEST(SelectorAllreduce, ThresholdsMatchPaperDefaults) {
  // 4-byte floats: 8192 elements = 32 KB, the RD cutoff (inclusive).
  auto small = select_ar(2, 4, 8192);
  EXPECT_EQ(small.name(), "rd");
  EXPECT_EQ(small.reason, "allreduce:threshold:small-or-indivisible");
  // Large but indivisible by 8 ranks -> RD.
  auto odd = select_ar(2, 4, 100001);
  EXPECT_EQ(odd.name(), "rd");
  // Large and divisible -> Ring with the MHA allgather phase.
  auto large = select_ar(2, 4, 131072);
  EXPECT_EQ(large.name(), "ring_mha");
  EXPECT_EQ(large.reason, "allreduce:threshold:large");
}

// ---- Environment overrides ----

TEST(SelectorEnv, PinsAllgatherByName) {
  EnvGuard guard(kAllgatherAlgoEnv, "node_aware_bruck");
  const auto sel = select_ag(2, 4, 1024);
  EXPECT_EQ(sel.name(), "node_aware_bruck");
  EXPECT_EQ(sel.reason, std::string("allgather:env:") + kAllgatherAlgoEnv);
}

TEST(SelectorEnv, PinnedAllgatherRunsEndToEnd) {
  EnvGuard guard(kAllgatherAlgoEnv, "node_aware_bruck");
  // mha_allgather must now route to the pinned algorithm and still gather
  // correctly on a multi-node shape (the acceptance scenario).
  check_allgather(
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) { return mha_allgather(c, r, s, rv, m, ip); },
      3, 4, 2048);
}

TEST(SelectorEnv, UnknownNameThrows) {
  EnvGuard guard(kAllgatherAlgoEnv, "definitely_not_registered");
  EXPECT_THROW(select_ag(2, 4, 1024), std::invalid_argument);
}

TEST(SelectorEnv, InapplicablePinThrows) {
  // mha_inter_rd needs a power-of-two node count; 3 nodes must fail loudly
  // rather than silently fall back.
  EnvGuard guard(kAllgatherAlgoEnv, "mha_inter_rd");
  EXPECT_THROW(select_ag(3, 2, 1024), std::invalid_argument);
}

TEST(SelectorEnv, PinsAllreduceByName) {
  EnvGuard guard(kAllreduceAlgoEnv, "ring_mha");
  const auto sel = select_ar(2, 4, 64);  // tiny: thresholds would say rd
  EXPECT_EQ(sel.name(), "ring_mha");
  EXPECT_EQ(sel.reason, std::string("allreduce:env:") + kAllreduceAlgoEnv);
}

// ---- Decision tracing ----

TEST(SelectorTrace, RecordsPhaseSpanWithNameAndReason) {
  trace::Tracer tracer;
  const auto sel = select_ag(2, 16, 2048, &tracer);
  ASSERT_EQ(sel.name(), "mha_inter_ring");
  bool found = false;
  for (const auto& s : tracer.spans()) {
    if (s.kind != trace::Kind::kPhase) continue;
    if (s.label.find("select:allgather=mha_inter_ring") == std::string::npos)
      continue;
    EXPECT_NE(s.label.find("threshold:fig8-ring"), std::string::npos)
        << s.label;
    EXPECT_EQ(s.bytes, 2048u);
    found = true;
  }
  EXPECT_TRUE(found) << "no selection span recorded";
}

// ---- Tuning-table mode ----

TEST(SelectorTable, TableDecisionWinsOverThresholds) {
  const auto spec = hw::ClusterSpec::thor(2, 4);
  Selector sel;
  sel.set_table(TuningTable::generate(spec));
  ASSERT_TRUE(sel.has_table());

  sim::Engine eng;
  mpi::World world(eng, spec, nullptr);
  const auto pick =
      sel.select_allgather(world.comm_world(), 0, 65536);
  EXPECT_EQ(pick.reason, "allgather:tuning-table");
  EXPECT_TRUE(pick.name() == "mha_inter_rd" || pick.name() == "mha_inter_ring")
      << pick.name();

  // A mismatched shape must ignore the table and fall back to thresholds.
  const auto other = select_ag(4, 2, 65536, nullptr, &sel);
  EXPECT_NE(other.reason, "allgather:tuning-table");
}

// ---- Cost-model mode ----

TEST(SelectorCost, RanksApplicableEntriesByModel) {
  Selector sel;
  sel.set_use_cost_model(true);
  const auto pick = select_ag(2, 4, 4096, nullptr, &sel);
  EXPECT_EQ(pick.reason, "allgather:cost-model");
  // Whatever wins must be applicable to a 2x4 world shape.
  ASSERT_NE(pick.algo, nullptr);
  EXPECT_TRUE(static_cast<bool>(pick.algo->cost));
}

TEST(SelectorCost, EnvOverrideStillWins) {
  EnvGuard guard(kAllgatherAlgoEnv, "ring");
  Selector sel;
  sel.set_use_cost_model(true);
  const auto pick = select_ag(2, 4, 4096, nullptr, &sel);
  EXPECT_EQ(pick.name(), "ring");
}

// ---- The dispatchers still produce correct results end-to-end ----

TEST(SelectorDispatch, MhaAllgatherMatchesDataOnEveryPath) {
  const auto fn = [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                     std::size_t m, bool ip) {
    return mha_allgather(c, r, s, rv, m, ip);
  };
  check_allgather(fn, 1, 4, 1024);    // rd_or_bruck path
  check_allgather(fn, 1, 4, 32768);   // mha_intra path
  check_allgather(fn, 2, 4, 512);     // mha_inter_rd path
  check_allgather(fn, 3, 2, 65536);   // mha_inter_ring path
}

}  // namespace
}  // namespace hmca::core
