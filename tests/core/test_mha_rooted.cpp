// MHA rooted collectives (Sec. 7 extension): hierarchical broadcast and
// reduce — correctness across topologies/roots, and the structural claims
// (striped inter-node movement, pipelined shm distribution).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "coll/bcast.hpp"
#include "core/mha_rooted.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::core {
namespace {

using hmca::testing::block_byte;

sim::Task<void> bcast_rank(mpi::Comm& comm, int r, int root, hw::BufView d) {
  co_await mha_bcast(comm, r, root, d);
}

void check_mha_bcast(int nodes, int ppn, std::size_t bytes, int root) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(bytes);
    if (r == root) {
      for (std::size_t i = 0; i < bytes; ++i) b.bytes()[i] = block_byte(root, i);
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(bcast_rank(comm, r, root, bufs[static_cast<std::size_t>(r)].view()));
  }
  eng.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < bytes; ++i) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)].bytes()[i],
                block_byte(root, i))
          << "rank " << r << " byte " << i;
    }
  }
}

using BTopo = std::tuple<int, int, std::size_t, int>;
class MhaBcastSweep : public ::testing::TestWithParam<BTopo> {};

TEST_P(MhaBcastSweep, BroadcastsCorrectly) {
  auto [nodes, ppn, bytes, root] = GetParam();
  check_mha_bcast(nodes, ppn, bytes, root);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MhaBcastSweep,
    ::testing::Values(BTopo{1, 4, 4096, 0},
                      BTopo{2, 2, 65536, 0},
                      BTopo{2, 2, 65536, 3},   // non-leader root
                      BTopo{3, 2, 12288, 4},   // non-p2 nodes, leader root
                      BTopo{4, 4, 1u << 20, 5},
                      BTopo{2, 1, 777, 1},     // ppn 1: leaders only
                      BTopo{1, 6, 100, 5}));   // intra-node, odd size

sim::Task<void> reduce_rank(mpi::Comm& comm, int r, int root, hw::BufView d,
                            std::size_t count, mpi::ReduceOp op) {
  co_await mha_reduce(comm, r, root, d, count, mpi::Dtype::kInt64, op);
}

void check_mha_reduce(int nodes, int ppn, std::size_t count, int root) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  auto init = [](int r, std::size_t e) {
    return static_cast<std::int64_t>((r + 1) * ((e % 3) + 1) - 2);
  };
  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(count * 8);
    for (std::size_t e = 0; e < count; ++e) b.as<std::int64_t>()[e] = init(r, e);
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(reduce_rank(comm, r, root,
                          bufs[static_cast<std::size_t>(r)].view(), count,
                          mpi::ReduceOp::kSum));
  }
  eng.run();
  for (std::size_t e = 0; e < count; ++e) {
    std::int64_t want = 0;
    for (int r = 0; r < p; ++r) want += init(r, e);
    ASSERT_EQ(bufs[static_cast<std::size_t>(root)].as<std::int64_t>()[e], want)
        << "elem " << e;
  }
}

using RTopo = std::tuple<int, int, std::size_t, int>;
class MhaReduceSweep : public ::testing::TestWithParam<RTopo> {};

TEST_P(MhaReduceSweep, ReducesCorrectly) {
  auto [nodes, ppn, count, root] = GetParam();
  check_mha_reduce(nodes, ppn, count, root);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MhaReduceSweep,
    ::testing::Values(RTopo{1, 4, 32, 0}, RTopo{2, 2, 64, 0},
                      RTopo{2, 2, 64, 3},    // non-leader root
                      RTopo{3, 2, 100, 4},
                      RTopo{4, 1, 16, 2},    // ppn 1
                      RTopo{2, 4, 4096, 6}));

TEST(MhaBcast, RejectsBadArguments) {
  auto spec = hw::ClusterSpec::thor(2, 2);
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  auto b = hw::Buffer::data(64);
  auto t = [&]() -> sim::Task<void> {
    co_await mha_bcast(comm, 0, 99, b.view());
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

TEST(MhaBcastPerf, BeatsFlatBinomialAcrossNodes) {
  // The hierarchy stripes the inter-node hops over all rails and pipelines
  // the shm distribution; a flat binomial pushes every byte through
  // single-rail pt2pt paths and repeats inter-node hops per rank.
  auto measure = [](bool hier) {
    auto spec = hw::ClusterSpec::thor(8, 8);
    spec.carry_data = false;
    sim::Engine eng;
    mpi::World world(eng, spec);
    auto& comm = world.comm_world();
    const int p = comm.size();
    std::vector<hw::Buffer> bufs;
    for (int r = 0; r < p; ++r) bufs.push_back(hw::Buffer::phantom(4u << 20));
    auto rank = [&, hier](int r) -> sim::Task<void> {
      if (hier) {
        co_await mha_bcast(comm, r, 0, bufs[static_cast<std::size_t>(r)].view());
      } else {
        co_await coll::bcast_binomial(comm, r, 0,
                                      bufs[static_cast<std::size_t>(r)].view());
      }
    };
    for (int r = 0; r < p; ++r) eng.spawn(rank(r));
    eng.run();
    return eng.now();
  };
  EXPECT_LT(measure(true), measure(false));
}

TEST(MhaReducePerf, CompetitiveWithFlatBinomial) {
  auto measure = [](bool hier) {
    auto spec = hw::ClusterSpec::thor(8, 8);
    spec.carry_data = false;
    sim::Engine eng;
    mpi::World world(eng, spec);
    auto& comm = world.comm_world();
    const int p = comm.size();
    const std::size_t count = 1u << 20;
    std::vector<hw::Buffer> bufs;
    for (int r = 0; r < p; ++r) bufs.push_back(hw::Buffer::phantom(count * 8));
    auto rank = [&, hier](int r) -> sim::Task<void> {
      if (hier) {
        co_await mha_reduce(comm, r, 0, bufs[static_cast<std::size_t>(r)].view(),
                            count, mpi::Dtype::kDouble, mpi::ReduceOp::kSum);
      } else {
        co_await coll::reduce_binomial(comm, r, 0,
                                       bufs[static_cast<std::size_t>(r)].view(),
                                       count, mpi::Dtype::kDouble,
                                       mpi::ReduceOp::kSum);
      }
    };
    for (int r = 0; r < p; ++r) eng.spawn(rank(r));
    eng.run();
    return eng.now();
  };
  // Reduce has no structural win in this substrate (both schedules run
  // log2(P) rounds with striped rendezvous); the hierarchy must simply not
  // cost anything.
  EXPECT_LT(measure(true), 1.25 * measure(false));
}

}  // namespace
}  // namespace hmca::core
