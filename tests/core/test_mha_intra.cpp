// MHA-intra: correctness across offload counts, and the performance
// properties the paper claims (HCA offload speeds up intra-node Allgather;
// the benefit shrinks as PPN grows — Sec. 5.2).
#include <gtest/gtest.h>

#include <tuple>

#include "core/mha_intra.hpp"
#include "core/tuner.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::core {
namespace {

using hmca::testing::check_allgather;

coll::AllgatherFn fn_mha_intra(double offload) {
  return [offload](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                   std::size_t m, bool ip) {
    return allgather_mha_intra(c, r, s, rv, m, ip, offload);
  };
}

// ---- Correctness sweep over (ppn, msg, offload) on one node ----

using Case = std::tuple<int, std::size_t, double>;

class MhaIntraSweep : public ::testing::TestWithParam<Case> {};

TEST_P(MhaIntraSweep, GathersCorrectly) {
  auto [ppn, msg, offload] = GetParam();
  check_allgather(fn_mha_intra(offload), 1, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MhaIntraSweep,
    ::testing::Values(Case{2, 1024, 0.0}, Case{2, 1024, 1.0},
                      Case{2, 1024, 0.5},       // fractional: split block
                      Case{4, 4096, 0.0}, Case{4, 4096, 1.0},
                      Case{4, 4096, 3.0}, Case{4, 4096, 1.75},
                      Case{4, 262144, 2.25},
                      Case{7, 512, 3.5},        // odd PPN, fractional
                      Case{8, 65536, -1.0},     // analytic offload
                      Case{3, 100, 1.37},       // odd sizes, odd fraction
                      Case{3, 100, 2.0}));

TEST(MhaIntra, InPlace) { check_allgather(fn_mha_intra(1), 1, 4, 2048, true); }

TEST(MhaIntra, SingleProcessIsTrivial) {
  check_allgather(fn_mha_intra(-1), 1, 1, 512);
}

TEST(MhaIntra, RejectsMultiNodeCommunicator) {
  EXPECT_THROW(check_allgather(fn_mha_intra(0), 2, 2, 512),
               std::invalid_argument);
}

// ---- Performance properties ----

double intra_latency(int ppn, std::size_t msg, double offload) {
  return OffloadTuner::measure(hw::ClusterSpec::thor(1, ppn), ppn, msg,
                               offload);
}

TEST(MhaIntraPerf, OffloadBeatsPureCma) {
  // Fig. 11 regime: 4 processes, 4 MB messages. The tuned design must beat
  // d = 0 (pure CMA Direct Spread) clearly.
  const std::size_t msg = 4u << 20;
  const double t_cma = intra_latency(4, msg, 0);
  const double d = analytic_offload(hw::ClusterSpec::thor(1, 4), 4, msg);
  EXPECT_GT(d, 0.4);
  const double t_mha = intra_latency(4, msg, d);
  EXPECT_LT(t_mha, 0.85 * t_cma);
}

TEST(MhaIntraPerf, FullOffloadIdlesCpus) {
  // The other arm of the V (Fig. 5): offloading everything is worse than
  // the optimum for enough processes.
  const std::size_t msg = 4u << 20;
  const int l = 8;
  const double d = OffloadTuner::search(hw::ClusterSpec::thor(1, l), l, msg);
  const double t_opt = intra_latency(l, msg, d);
  const double t_all = intra_latency(l, msg, l - 1);
  EXPECT_LT(t_opt, t_all);
}

TEST(MhaIntraPerf, BenefitShrinksWithMoreProcesses) {
  // Sec. 5.2's observed trend: with a fixed adapter count, the relative
  // gain over pure CMA decreases as more processes join.
  const std::size_t msg = 2u << 20;
  auto gain = [&](int l) {
    const double base = intra_latency(l, msg, 0);
    const double d = OffloadTuner::search(hw::ClusterSpec::thor(1, l), l, msg);
    return base / intra_latency(l, msg, d);
  };
  const double g2 = gain(2);
  const double g8 = gain(8);
  const double g16 = gain(16);
  EXPECT_GT(g2, g8);
  EXPECT_GT(g8, g16 * 0.95);  // monotone within tolerance
  EXPECT_GT(g2, 1.3);         // clear win at 2 processes
}

TEST(MhaIntraPerf, MoreAdaptersExtendTheBenefit) {
  // Sec. 5.2: "more adapters are needed for sustained performance when
  // more processes are involved" — a ThetaGPU-like 8-rail node keeps a
  // larger win at 16 PPN than the 2-rail Thor node.
  const std::size_t msg = 2u << 20;
  const int l = 16;
  auto gain = [&](int rails) {
    auto spec = hw::ClusterSpec::multi_rail(1, l, rails);
    const double base = OffloadTuner::measure(spec, l, msg, 0);
    const double d = OffloadTuner::search(spec, l, msg);
    return base / OffloadTuner::measure(spec, l, msg, d);
  };
  EXPECT_GT(gain(8), gain(2));
}

TEST(AnalyticOffload, MatchesEquationShape) {
  // Eq. 1: d grows with message size (the HCA startup matters less) and
  // never exceeds L-1.
  auto spec = hw::ClusterSpec::thor(1, 4);
  const double d_small = analytic_offload(spec, 4, 4096);
  const double d_large = analytic_offload(spec, 4, 8u << 20);
  EXPECT_GE(d_large, d_small);
  EXPECT_LE(d_large, 3.0);
  EXPECT_DOUBLE_EQ(analytic_offload(spec, 1, 65536), 0.0);
}

}  // namespace
}  // namespace hmca::core
