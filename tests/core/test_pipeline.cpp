// Structural claims of the dataflow refactor on MHA worlds: the phase-1
// tail no longer dominates the critical path at scale, phase-2/3 overlap
// is strictly higher than the barriered baseline (with the telemetry
// cross-check reconciling), and streaming never loses to barriers.
// `ctest -L dataflow` runs this suite.
#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "coll/graph.hpp"
#include "coll/registry.hpp"
#include "core/hierarchical.hpp"
#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/utilization.hpp"
#include "osu/harness.hpp"
#include "trace/trace.hpp"

namespace hmca::core {
namespace {

coll::AllgatherFn fn_graph() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) {
    return allgather_hierarchical(c, r, s, rv, m, ip, HierOptions{});
  };
}

coll::AllgatherFn fn_barrier() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) {
    HierOptions o;
    o.overlap = false;
    o.streaming = false;
    return allgather_hierarchical(c, r, s, rv, m, ip, o);
  };
}

struct Capture {
  trace::Tracer tracer;
  obs::Metrics metrics;
  std::vector<obs::ResourceSample> samples;
  double seconds = 0;
};

void run_mha(int nodes, int ppn, std::size_t msg, const coll::AllgatherFn& fn,
             Capture& c) {
  obs::CollectSink sink(&c.tracer, &c.metrics, &c.samples);
  c.seconds =
      osu::measure_allgather(hw::ClusterSpec::thor(nodes, ppn), fn, msg, sink);
}

// ---- Satellite: Phase-1 tail vs. critical path at 512 ranks ----

TEST(Pipeline, Phase1NoLongerDominatesCriticalPathAt512Ranks) {
  // 16 nodes x 32 ppn. Under strict barriers the slowest member's shm
  // publish (phase 1) gates every leader exchange; with chunk streaming
  // the path runs through the inter-node phase instead.
  Capture c;
  run_mha(16, 32, 256 * 1024, fn_graph(), c);
  ASSERT_GT(c.seconds, 0.0);
  const auto report = obs::analyze_critical_path(c.tracer.spans());
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.dominant_phase, "phase1") << report.summary();

  const auto* depth = c.metrics.histogram("coll.pipeline_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GE(depth->max, 2.0);  // chunks actually ran concurrently somewhere
}

// ---- Acceptance: overlap strictly higher than the barriered baseline ----

TEST(Pipeline, OverlapBeatsBarrierOnFig12Shape) {
  // Fig. 12 shape: 8 nodes x 32 ppn, rendezvous-sized message.
  const std::size_t msg = 512 * 1024;
  Capture graph, barrier;
  run_mha(8, 32, msg, fn_graph(), graph);
  run_mha(8, 32, msg, fn_barrier(), barrier);
  ASSERT_GT(graph.seconds, 0.0);
  ASSERT_GT(barrier.seconds, 0.0);

  const double graph_overlap =
      obs::phase_overlap_fraction(graph.tracer.spans());
  const double barrier_overlap =
      obs::phase_overlap_fraction(barrier.tracer.spans());
  EXPECT_GT(graph_overlap, barrier_overlap);
  EXPECT_GT(graph_overlap, 0.0);

  // Telemetry cross-check: the utilization sweep re-derives the overlap
  // with an independent algorithm; the two must reconcile.
  const auto util = obs::analyze_utilization(graph.tracer.spans(),
                                             graph.samples, graph.seconds);
  EXPECT_NEAR(util.phase_overlap, graph_overlap, 1e-9);

  // Streaming must not lose to the barriered baseline on its home shape.
  EXPECT_LE(graph.seconds, barrier.seconds);
}

TEST(Pipeline, StreamingNeverLosesAcrossShapes) {
  for (const auto& [nodes, ppn, msg] :
       {std::tuple{2, 4, std::size_t{65536}},
        std::tuple{4, 8, std::size_t{262144}},
        std::tuple{3, 2, std::size_t{1048576}}}) {
    const double graph = osu::measure_allgather(
        hw::ClusterSpec::thor(nodes, ppn), fn_graph(), msg);
    const double barrier = osu::measure_allgather(
        hw::ClusterSpec::thor(nodes, ppn), fn_barrier(), msg);
    EXPECT_LE(graph, barrier * 1.0001)
        << "nodes=" << nodes << " ppn=" << ppn << " msg=" << msg;
  }
}

// ---- Registry metadata: everything executes via the GraphExecutor ----

TEST(Pipeline, EveryAllgatherRegistersAGraphMode) {
  register_core_algorithms();
  const auto& reg = coll::Registry::instance();
  for (const auto& a : reg.allgathers()) {
    EXPECT_NE(a.graph, coll::GraphMode::kNone) << a.name;
  }
  for (const auto& a : reg.allgathervs()) {
    EXPECT_NE(a.graph, coll::GraphMode::kNone) << a.name;
  }
  // The paper's headline designs stream natively.
  EXPECT_EQ(reg.get_allgather("mha_inter").graph, coll::GraphMode::kNative);
  EXPECT_EQ(reg.get_allgather("mha_inter_barrier").graph,
            coll::GraphMode::kWrapped);
  EXPECT_EQ(reg.get_allgather("ring").graph, coll::GraphMode::kNative);
}

}  // namespace
}  // namespace hmca::core
