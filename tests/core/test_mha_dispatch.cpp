// The top-level MHA dispatchers: correctness and dispatch behaviour.
#include <gtest/gtest.h>

#include "core/mha.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::core {
namespace {

using hmca::testing::check_allgather;
using hmca::testing::check_allreduce;

coll::AllgatherFn fn_mha() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) { return mha_allgather(c, r, s, rv, m, ip); };
}

profiles::AllreduceFn fn_mha_ar() {
  return [](mpi::Comm& c, int r, hw::BufView d, std::size_t n, mpi::Dtype t,
            mpi::ReduceOp op) { return mha_allreduce(c, r, d, n, t, op); };
}

using Topo = std::tuple<int, int, std::size_t>;

class MhaAllgatherSweep : public ::testing::TestWithParam<Topo> {};

TEST_P(MhaAllgatherSweep, GathersCorrectly) {
  auto [nodes, ppn, msg] = GetParam();
  check_allgather(fn_mha(), nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MhaAllgatherSweep,
    ::testing::Values(Topo{1, 2, 64},       // intra small -> RD
                      Topo{1, 4, 262144},   // intra large -> MHA-intra
                      Topo{1, 3, 65536},    // odd ppn intra
                      Topo{2, 2, 128},      // inter small
                      Topo{2, 4, 65536},    // inter large
                      Topo{3, 2, 4096},     // non-p2 nodes -> Ring phase 2
                      Topo{4, 1, 16384}));  // ppn = 1: leaders only

TEST(MhaAllgather, InPlace) { check_allgather(fn_mha(), 2, 2, 65536, true); }

class MhaAllreduceSweep : public ::testing::TestWithParam<Topo> {};

TEST_P(MhaAllreduceSweep, ReducesCorrectly) {
  auto [nodes, ppn, count] = GetParam();
  check_allreduce(fn_mha_ar(), nodes, ppn, count, mpi::ReduceOp::kSum);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MhaAllreduceSweep,
    ::testing::Values(Topo{1, 2, 16},      // small -> RD
                      Topo{2, 2, 16384},   // large -> ring RS + MHA AG
                      Topo{3, 2, 12288},   // non-p2 nodes
                      Topo{2, 4, 32768},
                      Topo{4, 1, 8192},
                      Topo{2, 2, 13}));    // indivisible -> RD fallback

TEST(MhaAllreduce, MaxOpThroughRingPath) {
  check_allreduce(fn_mha_ar(), 2, 2, 16384, mpi::ReduceOp::kMax);
}

}  // namespace
}  // namespace hmca::core
