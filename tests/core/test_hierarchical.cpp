// The hierarchical (MHA-inter) Allgather: correctness across phase-1 modes,
// phase-2 algorithms and overlap settings, plus the paper's structural
// claims (overlap helps; Ring overlaps better than RD for large chunks).
#include <gtest/gtest.h>

#include <tuple>

#include "core/hierarchical.hpp"
#include "osu/harness.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::core {
namespace {

using hmca::testing::check_allgather;

coll::AllgatherFn fn_hier(HierOptions opts) {
  return [opts](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                std::size_t m, bool ip) {
    return allgather_hierarchical(c, r, s, rv, m, ip, opts);
  };
}

HierOptions make_opts(Phase1Mode p1, Phase2Algo p2, bool overlap) {
  HierOptions o;
  o.phase1 = p1;
  o.phase2 = p2;
  o.overlap = overlap;
  return o;
}

// ---- Correctness sweep: phase-1 x phase-2 x overlap x topology ----

using Case = std::tuple<Phase1Mode, Phase2Algo, bool, int, int, std::size_t>;

class HierSweep : public ::testing::TestWithParam<Case> {};

TEST_P(HierSweep, GathersCorrectly) {
  auto [p1, p2, overlap, nodes, ppn, msg] = GetParam();
  check_allgather(fn_hier(make_opts(p1, p2, overlap)), nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Ring, HierSweep,
    ::testing::Combine(
        ::testing::Values(Phase1Mode::kMhaIntra, Phase1Mode::kCmaDirect,
                          Phase1Mode::kShmGather),
        ::testing::Values(Phase2Algo::kRing),
        ::testing::Values(true, false),
        ::testing::Values(2, 3),    // incl. non-power-of-two nodes
        ::testing::Values(1, 2, 4),
        ::testing::Values(std::size_t{512}, std::size_t{65536})));

INSTANTIATE_TEST_SUITE_P(
    Rd, HierSweep,
    ::testing::Combine(
        ::testing::Values(Phase1Mode::kMhaIntra, Phase1Mode::kShmGather),
        ::testing::Values(Phase2Algo::kRD),
        ::testing::Values(true, false),
        ::testing::Values(2, 4),
        ::testing::Values(1, 3),
        ::testing::Values(std::size_t{512}, std::size_t{65536})));

INSTANTIATE_TEST_SUITE_P(
    Auto, HierSweep,
    ::testing::Combine(::testing::Values(Phase1Mode::kMhaIntra),
                       ::testing::Values(Phase2Algo::kAuto),
                       ::testing::Values(true),
                       ::testing::Values(2, 4, 5),
                       ::testing::Values(2),
                       ::testing::Values(std::size_t{256},
                                         std::size_t{262144})));

TEST(Hier, InPlace) {
  check_allgather(fn_hier(make_opts(Phase1Mode::kMhaIntra, Phase2Algo::kRing,
                                    true)),
                  2, 2, 4096, true);
}

TEST(Hier, SingleNodeDegeneratesToPhase1) {
  check_allgather(fn_hier({}), 1, 4, 2048);
}

TEST(Hier, NamedEntryPoints) {
  // The historical named designs as HierOptions points: MHA-inter is the
  // all-defaults options, single-leader is shm gather + RD (Ring on
  // non-power-of-two node counts).
  check_allgather(fn_hier({}), 2, 2, 8192);
  check_allgather(fn_hier(make_opts(Phase1Mode::kShmGather, Phase2Algo::kRD,
                                    true)),
                  2, 2, 8192);
  check_allgather(fn_hier(make_opts(Phase1Mode::kShmGather, Phase2Algo::kRing,
                                    true)),
                  3, 2, 8192);  // non-p2 nodes -> Ring
}

#ifndef HMCA_STRICT_API
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Hier, DeprecatedShimsStillGatherCorrectly) {
  // The pre-HierarchySpec entry points stay callable (and correct) until
  // the deprecation window closes; -DHMCA_STRICT_API=ON compiles them out.
  check_allgather(
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) { return allgather_mha_inter(c, r, s, rv, m, ip); },
      2, 2, 8192);
  check_allgather(
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) { return allgather_mha_inter_barrier(c, r, s, rv, m, ip); },
      2, 2, 4096);
  check_allgather(
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) { return allgather_single_leader(c, r, s, rv, m, ip); },
      3, 2, 8192);
  check_allgather(
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) { return allgather_numa3(c, r, s, rv, m, ip); },
      2, 4, 4096);
}
#pragma GCC diagnostic pop
#endif  // HMCA_STRICT_API

TEST(Hier, ResolvePhase2) {
  auto spec = hw::ClusterSpec::thor(8, 32);
  // Non-power-of-two node counts can never use RD.
  EXPECT_EQ(resolve_phase2(spec, 5, 32, 4096, Phase2Algo::kAuto),
            Phase2Algo::kRing);
  // Explicit requests pass through.
  EXPECT_EQ(resolve_phase2(spec, 8, 32, 4096, Phase2Algo::kRD),
            Phase2Algo::kRD);
  // The Fig. 8 shape: RD below the node-chunk crossover, Ring above.
  EXPECT_EQ(resolve_phase2(spec, 16, 32, 256, Phase2Algo::kAuto),
            Phase2Algo::kRD);
  EXPECT_EQ(resolve_phase2(spec, 16, 32, 1u << 20, Phase2Algo::kAuto),
            Phase2Algo::kRing);
  // Crossover sits exactly at the documented chunk threshold.
  const auto msg_at = kRdRingCrossoverChunk / 32;
  EXPECT_EQ(resolve_phase2(spec, 16, 32, msg_at, Phase2Algo::kAuto),
            Phase2Algo::kRD);
  EXPECT_EQ(resolve_phase2(spec, 16, 32, msg_at * 2, Phase2Algo::kAuto),
            Phase2Algo::kRing);
}

// ---- Performance/structure properties ----

double hier_latency(int nodes, int ppn, std::size_t msg, HierOptions opts) {
  return osu::measure_allgather(hw::ClusterSpec::thor(nodes, ppn),
                                fn_hier(opts), msg);
}

TEST(HierPerf, OverlapBeatsStrictPhases) {
  // The paper's core Sec. 3.2 claim: overlapping phase 3 with phase 2 wins
  // for bandwidth-bound configurations.
  const auto on = make_opts(Phase1Mode::kMhaIntra, Phase2Algo::kRing, true);
  const auto off = make_opts(Phase1Mode::kMhaIntra, Phase2Algo::kRing, false);
  const double t_on = hier_latency(8, 8, 65536, on);
  const double t_off = hier_latency(8, 8, 65536, off);
  EXPECT_LT(t_on, 0.9 * t_off);
}

TEST(HierPerf, RingOverlapsBetterThanRdForLargeChunks) {
  // Fig. 8: Ring wins for large per-process messages, RD for small.
  const auto ring = make_opts(Phase1Mode::kMhaIntra, Phase2Algo::kRing, true);
  const auto rd = make_opts(Phase1Mode::kMhaIntra, Phase2Algo::kRD, true);
  const double t_ring_large = hier_latency(16, 8, 262144, ring);
  const double t_rd_large = hier_latency(16, 8, 262144, rd);
  EXPECT_LT(t_ring_large, t_rd_large);

  const double t_ring_small = hier_latency(16, 8, 128, ring);
  const double t_rd_small = hier_latency(16, 8, 128, rd);
  EXPECT_LT(t_rd_small, t_ring_small);
}

TEST(HierPerf, MhaIntraPhase1BeatsShmGather) {
  const auto mha = make_opts(Phase1Mode::kMhaIntra, Phase2Algo::kRing, true);
  const auto shm = make_opts(Phase1Mode::kShmGather, Phase2Algo::kRing, true);
  const double t_mha = hier_latency(2, 4, 1u << 20, mha);
  const double t_shm = hier_latency(2, 4, 1u << 20, shm);
  EXPECT_LT(t_mha, t_shm);
}

}  // namespace
}  // namespace hmca::core
