// Persistent tuning tables: generation, lookup semantics, round-trip
// persistence, malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "core/tuning_table.hpp"
#include "core/tuner.hpp"

namespace hmca::core {
namespace {

TEST(TuningTable, GenerateIntraOnlyForSingleNode) {
  const auto spec = hw::ClusterSpec::thor(1, 4);
  const auto t = TuningTable::generate(spec, {65536, 1u << 20});
  EXPECT_EQ(t.nodes(), 1);
  EXPECT_EQ(t.ppn(), 4);
  EXPECT_EQ(t.hcas(), 2);
  ASSERT_EQ(t.intra_entries().size(), 2u);
  EXPECT_TRUE(t.inter_entries().empty());
  // Entries match a direct tuner run.
  EXPECT_DOUBLE_EQ(t.intra_entries()[0].offload,
                   OffloadTuner::search(spec, 4, 65536, 8));
}

TEST(TuningTable, GenerateInterEntriesAcrossNodes) {
  const auto spec = hw::ClusterSpec::thor(4, 4);
  const auto t = TuningTable::generate(spec, {1024, 262144});
  ASSERT_EQ(t.inter_entries().size(), 2u);
  // Fig. 8 shape: RD at the small size, Ring at the large one.
  EXPECT_EQ(t.inter_entries()[0].algo, Phase2Algo::kRD);
  EXPECT_EQ(t.inter_entries()[1].algo, Phase2Algo::kRing);
}

TEST(TuningTable, OffloadLookupInterpolatesAndClamps) {
  const auto spec = hw::ClusterSpec::thor(1, 8);
  const auto t = TuningTable::generate(spec, {65536, 1u << 20});
  const double lo = t.intra_entries()[0].offload;
  const double hi = t.intra_entries()[1].offload;
  EXPECT_DOUBLE_EQ(t.offload_for(1024), lo);        // clamp below
  EXPECT_DOUBLE_EQ(t.offload_for(16u << 20), hi);   // clamp above
  const double mid = t.offload_for(262144);         // geometric midpoint
  EXPECT_GE(mid, std::min(lo, hi));
  EXPECT_LE(mid, std::max(lo, hi));
}

TEST(TuningTable, EmptyTablesFallBackToAuto) {
  TuningTable t;
  EXPECT_DOUBLE_EQ(t.offload_for(4096), -1.0);
  EXPECT_EQ(t.phase2_for(4096), Phase2Algo::kAuto);
  const auto opts = t.options_for(4096);
  EXPECT_EQ(opts.phase2, Phase2Algo::kAuto);
  EXPECT_DOUBLE_EQ(opts.offload, -1.0);
}

TEST(TuningTable, SaveLoadRoundTrip) {
  const auto spec = hw::ClusterSpec::thor(2, 4);
  const auto t = TuningTable::generate(spec, {4096, 65536});
  std::stringstream ss;
  t.save(ss);
  const auto back = TuningTable::load(ss);
  EXPECT_EQ(back.nodes(), t.nodes());
  EXPECT_EQ(back.ppn(), t.ppn());
  EXPECT_EQ(back.hcas(), t.hcas());
  ASSERT_EQ(back.intra_entries().size(), t.intra_entries().size());
  for (std::size_t i = 0; i < t.intra_entries().size(); ++i) {
    EXPECT_EQ(back.intra_entries()[i].msg, t.intra_entries()[i].msg);
    EXPECT_NEAR(back.intra_entries()[i].offload, t.intra_entries()[i].offload,
                1e-9);
  }
  ASSERT_EQ(back.inter_entries().size(), t.inter_entries().size());
  for (std::size_t i = 0; i < t.inter_entries().size(); ++i) {
    EXPECT_EQ(back.inter_entries()[i].algo, t.inter_entries()[i].algo);
  }
}

TEST(TuningTable, LoadRejectsMalformedInput) {
  {
    std::stringstream ss("");
    EXPECT_THROW(TuningTable::load(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("not-a-tuning-file 1 2 2 2\n");
    EXPECT_THROW(TuningTable::load(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("hmca-tuning 1 2 2 2\nintra garbage\n");
    EXPECT_THROW(TuningTable::load(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("hmca-tuning 1 2 2 2\ninter 4096 zigzag\n");
    EXPECT_THROW(TuningTable::load(ss), std::invalid_argument);
  }
}

TEST(TuningTable, LoadSortsAndSkipsComments) {
  std::stringstream ss(
      "hmca-tuning 1 4 8 2\n"
      "# a comment\n"
      "inter 65536 ring\n"
      "inter 1024 rd\n"
      "intra 1048576 2.5\n"
      "intra 4096 0.5\n");
  const auto t = TuningTable::load(ss);
  ASSERT_EQ(t.intra_entries().size(), 2u);
  EXPECT_EQ(t.intra_entries()[0].msg, 4096u);
  EXPECT_EQ(t.phase2_for(2048), Phase2Algo::kRD);
  EXPECT_EQ(t.phase2_for(1u << 20), Phase2Algo::kRing);
}

}  // namespace
}  // namespace hmca::core
