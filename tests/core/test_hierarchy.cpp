// The declarative HierarchySpec API (core/hierarchy.hpp): spec validation
// and derivation, JSON round-trips, resolution invariants (partition,
// nesting, leaders), byte-identity of depth-2/depth-3 with the historical
// engines, n-level correctness on custom/adapter-group levels, the
// selector's depth routing, HMCA_HIERARCHY, and the multi-socket win the
// deeper hierarchy exists for.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/hier_detail.hpp"
#include "core/hierarchy.hpp"
#include "core/selector.hpp"
#include "obs/critical_path.hpp"
#include "obs/sink.hpp"
#include "osu/env.hpp"
#include "osu/harness.hpp"
#include "testing/coll_testing.hpp"
#include "trace/trace.hpp"

namespace hmca::core {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* var, const char* value) : var_(var) {
    ::setenv(var, value, /*overwrite=*/1);
  }
  ~EnvGuard() { ::unsetenv(var_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* var_;
};

HierLevel level(LevelKind k, LevelTransport t = LevelTransport::kAuto,
                std::vector<int> firsts = {}) {
  HierLevel l;
  l.kind = k;
  l.transport = t;
  l.custom_firsts = std::move(firsts);
  return l;
}

coll::AllgatherFn fn_spec(HierarchySpec hs, HierarchyOptions opts = {}) {
  return [hs, opts](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                    std::size_t m, bool ip) {
    return allgather_hierarchy(c, r, s, rv, m, ip, hs, opts);
  };
}

/// Data-mode correctness check over an arbitrary ClusterSpec (the shared
/// check_allgather helper is hardwired to flat thor nodes).
void check_hier(hw::ClusterSpec spec, const HierarchySpec& hs,
                std::size_t msg, bool in_place = false) {
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto recv = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    hw::Buffer send = hw::Buffer::data(in_place ? 0 : msg);
    for (std::size_t i = 0; i < msg; ++i) {
      const auto b = hmca::testing::block_byte(r, i);
      if (in_place) {
        recv.bytes()[static_cast<std::size_t>(r) * msg + i] = b;
      } else {
        send.bytes()[i] = b;
      }
    }
    sends.push_back(std::move(send));
    recvs.push_back(std::move(recv));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(hmca::testing::ag_rank_program(
        comm, fn_spec(hs), r, sends[static_cast<std::size_t>(r)].view(),
        recvs[static_cast<std::size_t>(r)].view(), msg, in_place));
  }
  eng.run();
  for (int r = 0; r < p; ++r) {
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < msg; ++i) {
        const auto got = recvs[static_cast<std::size_t>(r)]
                             .bytes()[static_cast<std::size_t>(src) * msg + i];
        ASSERT_EQ(got, hmca::testing::block_byte(src, i))
            << "rank " << r << " block " << src << " byte " << i;
      }
    }
  }
}

sim::Task<void> bc_rank(mpi::Comm& comm, int r, hw::BufView d,
                        HierarchySpec hs, std::size_t chunk) {
  co_await bcast_hierarchy(comm, r, /*root=*/0, d, std::move(hs), chunk);
}

void check_bcast(hw::ClusterSpec spec, const HierarchySpec& hs,
                 std::size_t len, std::size_t chunk) {
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(len);
    if (r == 0) {
      for (std::size_t i = 0; i < len; ++i) {
        b.bytes()[i] = hmca::testing::block_byte(0, i);
      }
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(bc_rank(comm, r, bufs[static_cast<std::size_t>(r)].view(), hs,
                      chunk));
  }
  eng.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)].bytes()[i],
                hmca::testing::block_byte(0, i))
          << "rank " << r << " byte " << i;
    }
  }
}

// ---- Spec validation and derivation ----

TEST(HierarchySpecTest, MhaIsAValidDepth2Spec) {
  const auto s = HierarchySpec::mha();
  EXPECT_EQ(s.depth(), 2);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.levels.front().kind, LevelKind::kNode);
  EXPECT_EQ(s.levels.back().kind, LevelKind::kCluster);
}

TEST(HierarchySpecTest, ValidationRejectsMalformedShapes) {
  HierarchySpec s;
  EXPECT_THROW(s.validate(), HierarchyError);  // empty
  s.levels = {level(LevelKind::kNode)};
  EXPECT_THROW(s.validate(), HierarchyError);  // depth 1
  s.levels = {level(LevelKind::kCluster), level(LevelKind::kNode)};
  EXPECT_THROW(s.validate(), HierarchyError);  // cluster not outermost
  s.levels = {level(LevelKind::kSocket), level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);  // node missing
  s.levels = {level(LevelKind::kNode), level(LevelKind::kNode),
              level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);  // node twice
  s.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {1, 2}),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);  // firsts must start at 0
  s.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {0, 2, 2}),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);  // not strictly ascending
  s.levels = {level(LevelKind::kSocket, LevelTransport::kAuto, {0, 2}),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);  // firsts on non-custom
}

TEST(HierarchySpecTest, TransportPlacementRules) {
  // RD belongs to the cluster level only.
  HierarchySpec s;
  s.levels = {level(LevelKind::kNode, LevelTransport::kRd),
              level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);
  s.levels = {level(LevelKind::kNode),
              level(LevelKind::kCluster, LevelTransport::kRd)};
  EXPECT_NO_THROW(s.validate());
  // MHA-intra is an innermost-level transport.
  s.levels = {level(LevelKind::kSocket),
              level(LevelKind::kNode, LevelTransport::kMhaIntra),
              level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);
  s.levels = {level(LevelKind::kSocket, LevelTransport::kMhaIntra),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_NO_THROW(s.validate());
  // Shm: innermost of a depth-2 spec, or any intermediate level.
  s.levels = {level(LevelKind::kNode, LevelTransport::kShm),
              level(LevelKind::kCluster)};
  EXPECT_NO_THROW(s.validate());
  s.levels = {level(LevelKind::kSocket, LevelTransport::kShm),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_THROW(s.validate(), HierarchyError);
  s.levels = {level(LevelKind::kSocket),
              level(LevelKind::kNode, LevelTransport::kShm),
              level(LevelKind::kCluster)};
  EXPECT_NO_THROW(s.validate());
}

TEST(HierarchySpecTest, DeriveFollowsTopology) {
  const auto flat = hw::ClusterSpec::thor(4, 8);
  const auto numa = hw::ClusterSpec::thor_numa(4, 8);
  EXPECT_EQ(HierarchySpec::derive(flat, 0).depth(), 2);
  EXPECT_EQ(HierarchySpec::derive(numa, 0).depth(), 3);
  EXPECT_EQ(HierarchySpec::derive(numa, 2).depth(), 2);
  // Explicit depth 3 on flat nodes collapses: a one-socket level is a
  // no-op stage.
  EXPECT_EQ(HierarchySpec::derive(flat, 3).depth(), 2);
  EXPECT_THROW(HierarchySpec::derive(flat, 4), HierarchyError);
  EXPECT_THROW(HierarchySpec::derive(flat, 1), HierarchyError);
}

TEST(HierarchySpecTest, JsonRoundTrip) {
  HierarchySpec s;
  s.levels = {level(LevelKind::kCustom, LevelTransport::kCma, {0, 2}),
              level(LevelKind::kNode),
              level(LevelKind::kCluster, LevelTransport::kRing)};
  const std::string text = s.to_json();
  const auto back = HierarchySpec::from_json(text);
  EXPECT_EQ(back.depth(), 3);
  EXPECT_EQ(back.levels[0].kind, LevelKind::kCustom);
  EXPECT_EQ(back.levels[0].transport, LevelTransport::kCma);
  EXPECT_EQ(back.levels[0].custom_firsts, (std::vector<int>{0, 2}));
  EXPECT_EQ(back.levels[2].transport, LevelTransport::kRing);
  EXPECT_EQ(back.to_json(), text);

  EXPECT_THROW(HierarchySpec::from_json("not json"), HierarchyError);
  EXPECT_THROW(HierarchySpec::from_json("{}"), HierarchyError);
  EXPECT_THROW(HierarchySpec::from_json(
                   R"({"levels": [{"kind": "flux"}, {"kind": "cluster"}]})"),
               HierarchyError);
}

// ---- Resolution invariants ----

/// Every level must partition the world into ascending contiguous spans,
/// leaders must be group-first ranks, inner levels must refine outer ones,
/// and group_of must agree with the materialized groups.
void expect_resolved_invariants(const Hierarchy& h, int world_size) {
  const auto& lv = h.levels();
  ASSERT_EQ(static_cast<int>(lv.size()), h.depth());
  for (std::size_t l = 0; l < lv.size(); ++l) {
    const auto& gs = lv[l].groups;
    ASSERT_FALSE(gs.empty()) << "level " << l;
    int next = 0;
    for (std::size_t g = 0; g < gs.size(); ++g) {
      EXPECT_EQ(gs[g].first, next) << "level " << l << " group " << g;
      EXPECT_GT(gs[g].size, 0) << "level " << l << " group " << g;
      EXPECT_EQ(gs[g].leader, gs[g].first) << "level " << l << " group " << g;
      next = gs[g].first + gs[g].size;
    }
    EXPECT_EQ(next, world_size) << "level " << l << " does not cover world";
    for (int r = 0; r < world_size; ++r) {
      const int g = h.group_of(static_cast<int>(l), r);
      EXPECT_LE(gs[static_cast<std::size_t>(g)].first, r);
      EXPECT_LT(r, gs[static_cast<std::size_t>(g)].first +
                       gs[static_cast<std::size_t>(g)].size);
    }
  }
  // Refinement: every outer boundary is an inner boundary.
  for (std::size_t l = 0; l + 1 < lv.size(); ++l) {
    for (const auto& outer : lv[l + 1].groups) {
      bool found = false;
      for (const auto& inner : lv[l].groups) {
        if (inner.first == outer.first) found = true;
      }
      EXPECT_TRUE(found) << "outer level " << l + 1 << " boundary "
                         << outer.first << " not an inner boundary";
    }
  }
}

TEST(HierarchyResolve, InvariantsAcrossSpecsAndTopologies) {
  struct Combo {
    hw::ClusterSpec spec;
    HierarchySpec hs;
  };
  auto uneven = hw::ClusterSpecBuilder(hw::ClusterSpec::thor_numa(2, 8))
                    .ppn(7)
                    .build();
  std::vector<Combo> combos = {
      {hw::ClusterSpec::thor(4, 8), HierarchySpec::mha()},
      {hw::ClusterSpec::thor_numa(2, 8),
       HierarchySpec::derive(hw::ClusterSpec::thor_numa(2, 8), 3)},
      {uneven, HierarchySpec::derive(uneven, 3)},
  };
  // Adapter-group level on a 4-rail node.
  Combo ag;
  ag.spec = hw::ClusterSpec::multi_rail(2, 8, 4);
  ag.hs.levels = {level(LevelKind::kAdapterGroup), level(LevelKind::kNode),
                  level(LevelKind::kCluster)};
  combos.push_back(ag);
  // Custom depth-4: pairs < halves < node < cluster on ppn 8.
  Combo c4;
  c4.spec = hw::ClusterSpec::thor(2, 8);
  c4.hs.levels = {level(LevelKind::kCustom, LevelTransport::kAuto,
                        {0, 2, 4, 6}),
                  level(LevelKind::kCustom, LevelTransport::kAuto, {0, 4}),
                  level(LevelKind::kNode), level(LevelKind::kCluster)};
  combos.push_back(c4);

  for (std::size_t i = 0; i < combos.size(); ++i) {
    SCOPED_TRACE("combo " + std::to_string(i));
    sim::Engine eng;
    hw::Cluster cl(eng, combos[i].spec);
    const Hierarchy h(combos[i].hs, cl);
    expect_resolved_invariants(h, cl.world_size());
  }
}

TEST(HierarchyResolve, UnevenSocketsGetBlockSpans) {
  // L=7, S=2 -> sockets {4, 3}: the socket level's node-local groups match
  // the cluster's block distribution.
  auto spec = hw::ClusterSpecBuilder(hw::ClusterSpec::thor_numa(2, 8))
                  .ppn(7)
                  .build();
  sim::Engine eng;
  hw::Cluster cl(eng, spec);
  const Hierarchy h(HierarchySpec::derive(spec, 3), cl);
  const auto& sockets = h.levels().front().groups;
  ASSERT_EQ(sockets.size(), 4u);  // 2 nodes x 2 sockets
  EXPECT_EQ(sockets[0].size, 4);
  EXPECT_EQ(sockets[1].size, 3);
  EXPECT_EQ(sockets[2].first, 7);
  EXPECT_EQ(sockets[2].size, 4);
  EXPECT_EQ(sockets[3].size, 3);
  EXPECT_EQ(h.structure(), "cluster:1>node:2>socket:4");
}

TEST(HierarchyResolve, RejectsSpecTopologyMismatch) {
  sim::Engine eng;
  hw::Cluster cl(eng, hw::ClusterSpec::thor(2, 4));
  // Custom boundary beyond ppn.
  HierarchySpec s;
  s.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {0, 5}),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_THROW(Hierarchy(s, cl), HierarchyError);
  // Adapter groups need hcas <= ppn.
  sim::Engine eng2;
  hw::Cluster wide(eng2, hw::ClusterSpec::multi_rail(2, 2, 3));
  HierarchySpec a;
  a.levels = {level(LevelKind::kAdapterGroup), level(LevelKind::kNode),
              level(LevelKind::kCluster)};
  EXPECT_THROW(Hierarchy(a, wide), HierarchyError);
  // Non-nesting custom levels: {0,3} does not refine under {0,2}.
  HierarchySpec n;
  n.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {0, 2}),
              level(LevelKind::kCustom, LevelTransport::kAuto, {0, 3}),
              level(LevelKind::kNode), level(LevelKind::kCluster)};
  EXPECT_THROW(Hierarchy(n, cl), HierarchyError);
}

// ---- Byte-identity with the historical engines ----

TEST(HierarchyApi, Depth2IsMetricIdenticalToMhaInter) {
  const auto spec = hw::ClusterSpec::thor(4, 4);
  for (std::size_t msg : {std::size_t{4096}, std::size_t{262144}}) {
    const double t_spec =
        osu::measure_allgather(spec, fn_spec(HierarchySpec::mha()), msg);
    const double t_hist = osu::measure_allgather(
        spec,
        [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
           bool ip) {
          return allgather_hierarchical(c, r, s, rv, m, ip, HierOptions{});
        },
        msg);
    EXPECT_EQ(t_spec, t_hist) << "msg=" << msg;  // exact: same event stream
  }
}

TEST(HierarchyApi, Depth3IsMetricIdenticalToNumaEngine) {
  const auto spec = hw::ClusterSpec::thor_numa(2, 8);
  const std::size_t msg = 65536;
  const double t_spec = osu::measure_allgather(
      spec, fn_spec(HierarchySpec::derive(spec, 3)), msg);
  const double t_hist = osu::measure_allgather(
      spec,
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) {
        HierOptions o;
        o.phase1 = Phase1Mode::kNumaTwoLevel;
        return allgather_hierarchical(c, r, s, rv, m, ip, o);
      },
      msg);
  EXPECT_EQ(t_spec, t_hist);
}

// ---- n-level correctness ----

TEST(HierarchyApi, CustomDepth4GathersCorrectly) {
  HierarchySpec hs;
  hs.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {0, 2, 4, 6}),
               level(LevelKind::kCustom, LevelTransport::kAuto, {0, 4}),
               level(LevelKind::kNode), level(LevelKind::kCluster)};
  check_hier(hw::ClusterSpec::thor(2, 8), hs, 4096);
  check_hier(hw::ClusterSpec::thor(3, 8), hs, 100);  // non-p2, odd bytes
  check_hier(hw::ClusterSpec::thor(2, 8), hs, 2048, /*in_place=*/true);
}

TEST(HierarchyApi, AdapterGroupDepth3GathersCorrectly) {
  HierarchySpec hs;
  hs.levels = {level(LevelKind::kAdapterGroup), level(LevelKind::kNode),
               level(LevelKind::kCluster)};
  check_hier(hw::ClusterSpec::multi_rail(2, 8, 4), hs, 4096);
  // hcas (3) does not divide ppn (8): groups {3, 3, 2}.
  check_hier(hw::ClusterSpec::multi_rail(2, 8, 3), hs, 1024);
}

TEST(HierarchyApi, UnevenSocketsGatherCorrectly) {
  auto spec = hw::ClusterSpecBuilder(hw::ClusterSpec::thor_numa(2, 8))
                  .ppn(7)
                  .build();
  check_hier(spec, HierarchySpec::derive(spec, 0), 4096);
  check_hier(spec, HierarchySpec::derive(spec, 0), 513, /*in_place=*/true);
}

TEST(HierarchyApi, UnevenCustomGroupsGatherCorrectly) {
  HierarchySpec hs;
  hs.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {0, 3}),
               level(LevelKind::kNode), level(LevelKind::kCluster)};
  check_hier(hw::ClusterSpec::thor(2, 5), hs, 2048);
}

// ---- Hierarchy-aware bcast ----

TEST(HierarchyBcast, Depth2DelegatesToMhaBcast) {
  check_bcast(hw::ClusterSpec::thor(2, 4), HierarchySpec::mha(), 8192, 4096);
}

TEST(HierarchyBcast, Depth3CascadeDelivers) {
  const auto spec = hw::ClusterSpec::thor_numa(2, 8);
  check_bcast(spec, HierarchySpec::derive(spec, 3), 16384, 4096);
  // Pipeline chunk larger than the payload: single-chunk path.
  check_bcast(spec, HierarchySpec::derive(spec, 3), 1000, 1 << 20);
}

TEST(HierarchyBcast, CustomDepth4CascadeDelivers) {
  HierarchySpec hs;
  hs.levels = {level(LevelKind::kCustom, LevelTransport::kAuto, {0, 2, 4, 6}),
               level(LevelKind::kCustom, LevelTransport::kAuto, {0, 4}),
               level(LevelKind::kNode), level(LevelKind::kCluster)};
  check_bcast(hw::ClusterSpec::thor(2, 8), hs, 12000, 4096);
}

// ---- Selector depth routing and the env override ----

TEST(SelectorDepth, FlatNodesKeepPaperThresholds) {
  const auto spec = hw::ClusterSpec::thor(4, 4);
  sim::Engine eng;
  mpi::World world(eng, spec);
  const auto sel =
      default_selector().select_allgather(world.comm_world(), 0, 65536);
  EXPECT_EQ(sel.reason.rfind("allgather:threshold:fig8", 0), 0u) << sel.reason;
}

TEST(SelectorDepth, MultiSocketWorldsRouteToDepth3) {
  const auto spec = hw::ClusterSpec::thor_numa(2, 8);
  sim::Engine eng;
  mpi::World world(eng, spec);
  const auto sel =
      default_selector().select_allgather(world.comm_world(), 0, 65536);
  EXPECT_EQ(sel.name(), "hier3");
  EXPECT_EQ(sel.reason, "allgather:depth:cluster:1>node:2>socket:4");
}

TEST(SelectorDepth, CommShapeAgreesWithDerive) {
  coll::CommShape s;
  s.nodes = 4;
  s.sockets = 2;
  EXPECT_EQ(s.natural_depth(), 3);
  EXPECT_EQ(s.level_structure(), "cluster:1>node:4>socket:8");
  s.sockets = 1;
  EXPECT_EQ(s.natural_depth(), 2);
  EXPECT_EQ(s.level_structure(), "cluster:1>node:4");
  s.nodes = 1;
  s.sockets = 2;
  EXPECT_EQ(s.natural_depth(), 2);
}

TEST(SelectorDepth, EnvOverridePinsDepth) {
  const auto spec = hw::ClusterSpec::thor_numa(2, 8);
  {
    EnvGuard env(osu::Env::kHierarchy, "2");
    sim::Engine eng;
    mpi::World world(eng, spec);
    const auto sel =
        default_selector().select_allgather(world.comm_world(), 0, 65536);
    EXPECT_EQ(sel.name(), "hier2");
    EXPECT_EQ(sel.reason, std::string("allgather:env:") + osu::Env::kHierarchy);
  }
  {
    EnvGuard env(osu::Env::kHierarchy, "auto");
    sim::Engine eng;
    mpi::World world(eng, spec);
    const auto sel =
        default_selector().select_allgather(world.comm_world(), 0, 65536);
    EXPECT_EQ(sel.name(), "hier3");  // auto = policy decides
  }
}

TEST(HierarchyEnv, ParsesDepthsFilesAndRejectsJunk) {
  const auto numa = hw::ClusterSpec::thor_numa(2, 8);
  EXPECT_FALSE(hierarchy_from_env(numa).has_value());
  {
    EnvGuard env(osu::Env::kHierarchy, "3");
    const auto hs = hierarchy_from_env(numa);
    ASSERT_TRUE(hs.has_value());
    EXPECT_EQ(hs->depth(), 3);
  }
  {
    EnvGuard env(osu::Env::kHierarchy, "auto");
    EXPECT_FALSE(hierarchy_from_env(numa).has_value());
  }
  const std::string path = ::testing::TempDir() + "hmca_hier_spec.json";
  {
    std::ofstream out(path);
    out << HierarchySpec::mha().to_json();
  }
  {
    EnvGuard env(osu::Env::kHierarchy, ("@" + path).c_str());
    const auto hs = hierarchy_from_env(numa);
    ASSERT_TRUE(hs.has_value());
    EXPECT_EQ(hs->depth(), 2);
  }
  {
    EnvGuard env(osu::Env::kHierarchy, "@/nonexistent/spec.json");
    EXPECT_THROW(hierarchy_from_env(numa), HierarchyError);
  }
  {
    EnvGuard env(osu::Env::kHierarchy, "banana");
    EXPECT_THROW(hierarchy_from_env(numa), HierarchyError);
  }
}

// ---- Key allocation / grouping primitives ----

TEST(HierDetail, GroupOfFindsEnclosingSpan) {
  const std::vector<int> firsts = {0, 4, 7};
  EXPECT_EQ(detail::group_of(firsts, 0), 0);
  EXPECT_EQ(detail::group_of(firsts, 3), 0);
  EXPECT_EQ(detail::group_of(firsts, 4), 1);
  EXPECT_EQ(detail::group_of(firsts, 6), 1);
  EXPECT_EQ(detail::group_of(firsts, 7), 2);
  EXPECT_EQ(detail::group_of(firsts, 100), 2);
}

TEST(HierDetail, OpKeysSeparateSaltAndContext) {
  EXPECT_NE(detail::op_key(1, 5, 1), detail::op_key(1, 5, 2));
  EXPECT_NE(detail::op_key(1, 5, 1), detail::op_key(2, 5, 1));
  EXPECT_NE(detail::op_key(1, 5, 1), detail::op_key(1, 6, 1));
}

// ---- The point of depth 3: multi-socket wins, telemetry-confirmed ----

TEST(HierarchyPerf, Depth3BeatsDepth2OnConstrainedUpi) {
  auto spec = hw::ClusterSpec::thor_numa(1, 32);
  spec.upi_bw = 8e9;  // older QPI parts: the link binds
  spec.carry_data = false;
  const std::size_t msg = 1u << 20;

  trace::Tracer tr2, tr3;
  const double t2 = osu::measure_allgather(
      spec, fn_spec(HierarchySpec::derive(spec, 2)), msg, &tr2);
  const double t3 = osu::measure_allgather(
      spec, fn_spec(HierarchySpec::derive(spec, 3)), msg, &tr3);
  EXPECT_LT(t3, 0.95 * t2);

  // Telemetry cross-check: the critical-path analysis over the captured
  // spans must agree with the measured makespans — the win is visible in
  // the span structure, not only the clock.
  const auto cp2 = obs::analyze_critical_path(tr2.spans());
  const auto cp3 = obs::analyze_critical_path(tr3.spans());
  ASSERT_FALSE(cp2.empty());
  ASSERT_FALSE(cp3.empty());
  const double end2 = cp2.steps.back().t1;
  const double end3 = cp3.steps.back().t1;
  EXPECT_LE(end2, t2 * (1 + 1e-9));
  EXPECT_GE(end2, 0.9 * t2);
  EXPECT_LE(end3, t3 * (1 + 1e-9));
  EXPECT_GE(end3, 0.9 * t3);
  EXPECT_LT(end3, 0.95 * end2);
}

}  // namespace
}  // namespace hmca::core
