// The Fig. 5 offload tuner: V-shaped curve, descent finds the minimum,
// agreement with Eq. 1 within a step or two.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mha_intra.hpp"
#include "core/tuner.hpp"

namespace hmca::core {
namespace {

TEST(Tuner, MeasureIsDeterministic) {
  const auto spec = hw::ClusterSpec::thor(1, 4);
  const double a = OffloadTuner::measure(spec, 4, 1u << 20, 1);
  const double b = OffloadTuner::measure(spec, 4, 1u << 20, 1);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Tuner, SweepCoversTheOffloadRange) {
  const auto spec = hw::ClusterSpec::thor(1, 4);
  const auto curve = OffloadTuner::sweep(spec, 4, 1u << 20, 8);
  ASSERT_EQ(curve.size(), 9u);
  EXPECT_DOUBLE_EQ(curve.front().offload, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().offload, 3.0);
  for (const auto& smp : curve) EXPECT_GT(smp.latency_s, 0.0);
}

TEST(Tuner, CurveIsVShapedForLargeMessages) {
  // Fig. 5: latency decreases from d=0 to the optimum, then increases
  // toward full offload (for enough processes that full offload hurts).
  const auto spec = hw::ClusterSpec::thor(1, 8);
  const auto curve = OffloadTuner::sweep(spec, 8, 4u << 20);
  std::size_t argmin = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].latency_s < curve[argmin].latency_s) argmin = i;
  }
  EXPECT_GT(argmin, 0u);               // offloading something helps
  EXPECT_LT(argmin, curve.size() - 1); // offloading everything hurts
  // Loosely unimodal: endpoints are worse than the vertex.
  EXPECT_GT(curve.front().latency_s, curve[argmin].latency_s);
  EXPECT_GT(curve.back().latency_s, curve[argmin].latency_s);
}

TEST(Tuner, SearchFindsTheSweepMinimum) {
  const auto spec = hw::ClusterSpec::thor(1, 8);
  const std::size_t msg = 4u << 20;
  const double d = OffloadTuner::search(spec, 8, msg);
  const auto curve = OffloadTuner::sweep(spec, 8, msg);
  double best = curve.front().latency_s;
  for (const auto& smp : curve) best = std::min(best, smp.latency_s);
  EXPECT_NEAR(OffloadTuner::measure(spec, 8, msg, d), best, best * 0.05);
}

TEST(Tuner, SearchAgreesWithEquationOne) {
  const auto spec = hw::ClusterSpec::thor(1, 8);
  const std::size_t msg = 2u << 20;
  const double d_search = OffloadTuner::search(spec, 8, msg);
  const double d_eq = analytic_offload(spec, 8, msg);
  EXPECT_LE(std::abs(d_search - d_eq), 1.5);
}

TEST(Tuner, TrivialCases) {
  const auto spec = hw::ClusterSpec::thor(1, 1);
  EXPECT_DOUBLE_EQ(OffloadTuner::search(spec, 1, 65536), 0.0);
  EXPECT_THROW(OffloadTuner::measure(spec, 0, 64, 0), std::invalid_argument);
  EXPECT_THROW(OffloadTuner::sweep(spec, 2, 64, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hmca::core
