// Degraded-mode collectives: Eq. 1 offload recomputation over surviving
// rails, the CPU-only MHA-intra fallback, CommShape rail health, and the
// selector's degraded routing.
#include <gtest/gtest.h>

#include <string>

#include "coll/registry.hpp"
#include "core/mha_intra.hpp"
#include "core/selector.hpp"
#include "hw/spec.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "testing/conformance.hpp"
#include "trace/trace.hpp"

namespace hmca::core {
namespace {

TEST(AnalyticOffloadDegraded, MatchesHealthyOptimumWithAllRails) {
  const auto spec = hw::ClusterSpec::multi_rail(1, 8, 2);
  const std::size_t msg = 1 << 20;
  EXPECT_DOUBLE_EQ(analytic_offload_degraded(spec, 8, msg, 2),
                   analytic_offload(spec, 8, msg));
}

TEST(AnalyticOffloadDegraded, ZeroRailsMeansNoOffload) {
  const auto spec = hw::ClusterSpec::multi_rail(1, 8, 2);
  EXPECT_DOUBLE_EQ(analytic_offload_degraded(spec, 8, 1 << 20, 0), 0.0);
}

TEST(AnalyticOffloadDegraded, FewerRailsOffloadLess) {
  const auto spec = hw::ClusterSpec::multi_rail(1, 16, 4);
  const std::size_t msg = 1 << 20;
  double prev = 0.0;
  for (int rails = 1; rails <= 4; ++rails) {
    const double d = analytic_offload_degraded(spec, 16, msg, rails);
    EXPECT_GE(d, prev) << rails << " rails";
    prev = d;
  }
  EXPECT_LT(analytic_offload_degraded(spec, 16, msg, 1),
            analytic_offload(spec, 16, msg));
}

TEST(CommShape, ReportsHealthyRailMinimum) {
  auto spec = hw::ClusterSpec::multi_rail(2, 2, 2);
  spec.fault_plan = "kill:node=1,hca=0,t=0";
  sim::Engine eng;
  mpi::World world(eng, spec);
  eng.run();  // fire the kill
  const auto shape = coll::CommShape::of(world.comm_world());
  EXPECT_EQ(shape.hcas, 2);
  EXPECT_EQ(shape.healthy_hcas, 1);  // min over nodes: node 1 has 1 left
  EXPECT_TRUE(shape.degraded());
}

TEST(CommShape, HealthyClusterIsNotDegraded) {
  sim::Engine eng;
  mpi::World world(eng, hw::ClusterSpec::multi_rail(2, 2, 2));
  const auto shape = coll::CommShape::of(world.comm_world());
  EXPECT_EQ(shape.healthy_hcas, 2);
  EXPECT_FALSE(shape.degraded());
}

/// What the default selector picks on a faulted world (faults fired first).
AllgatherSelection select_faulted(int nodes, int ppn, std::size_t msg,
                                  const std::string& plan) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.fault_plan = plan;
  sim::Engine eng;
  mpi::World world(eng, spec);
  eng.run();
  return default_selector().select_allgather(world.comm_world(), 0, msg);
}

TEST(SelectorDegraded, WorldWithLostRailPinsRing) {
  // Healthy, this shape picks RD (chunk 512*16 = 8 KB <= 16 KB crossover).
  const auto healthy = select_faulted(2, 16, 512, "");
  EXPECT_EQ(healthy.name(), "mha_inter_rd");
  const auto degraded = select_faulted(2, 16, 512, "kill:node=0,hca=1,t=0");
  EXPECT_EQ(degraded.name(), "mha_inter_ring");
  EXPECT_EQ(degraded.reason, "allgather:degraded:rails=1/2:ring");
}

TEST(SelectorDegraded, IntraWithLostRailStaysOnMhaIntra) {
  const auto sel =
      select_faulted(1, 8, 65536, "kill:node=0,hca=1,t=0");
  EXPECT_EQ(sel.name(), "mha_intra");
  EXPECT_EQ(sel.reason, "allgather:degraded:rails=1/2");
}

TEST(SelectorDegraded, AllRailsDownPinsCpuOnlyIntra) {
  const auto sel = select_faulted(1, 8, 65536, "kill:node=0,hca=*,t=0");
  EXPECT_EQ(sel.name(), "mha_intra");
  EXPECT_EQ(sel.reason, "allgather:degraded:rails=0/2:cpu-only");
}

TEST(SelectorDegraded, SmallIntraMessagesKeepConventionalPath) {
  // The conventional small-message algorithms never touch the loopback
  // rails, so degraded shapes keep the healthy decision there.
  const auto sel = select_faulted(1, 8, 1024, "kill:node=0,hca=*,t=0");
  EXPECT_EQ(sel.name(), "rd_or_bruck");
  EXPECT_EQ(sel.reason, "allgather:threshold:intra-small");
}

TEST(MhaIntraDegraded, CpuOnlyFallbackStillGathersCorrectly) {
  // Every loopback rail dead from t=0; the analytic offload path must fall
  // back to plain CMA Direct Spread and still produce the right bytes.
  testing::conf::Trial t;
  t.nodes = 1;
  t.ppn = 8;
  t.hcas = 2;
  t.msg = 65536;
  t.fault_plan = "kill:node=0,hca=*,t=0";
  const coll::AllgatherFn fn = [](mpi::Comm& c, int my, hw::BufView s,
                                  hw::BufView r, std::size_t m, bool ip) {
    return allgather_mha_intra(c, my, s, r, m, ip);  // offload = analytic
  };
  const auto got = testing::conf::run_allgather(fn, t);
  const auto want = testing::conf::reference_allgather(t);
  EXPECT_EQ(testing::conf::diff_results(got, want), "");
}

TEST(MhaIntraDegraded, CpuOnlyFallbackIsTraced) {
  testing::conf::Trial t;
  t.nodes = 1;
  t.ppn = 4;
  t.hcas = 2;
  t.msg = 65536;
  t.fault_plan = "kill:node=0,hca=*,t=0";
  trace::Tracer tracer;
  const coll::AllgatherFn fn = [](mpi::Comm& c, int my, hw::BufView s,
                                  hw::BufView r, std::size_t m, bool ip) {
    return allgather_mha_intra(c, my, s, r, m, ip, /*offload=*/2.0);
  };
  testing::conf::run_allgather(fn, t, &tracer);
  bool saw_fallback = false;
  for (const auto& s : tracer.spans()) {
    if (s.label.rfind("fault:mha_intra cpu-only", 0) == 0) saw_fallback = true;
  }
  EXPECT_TRUE(saw_fallback);
}

TEST(MhaIntraDegraded, SurvivingRailRunsReducedOffload) {
  // One of two rails dead: the collective still completes correctly using
  // the reduced Eq. 1 split on the surviving rail.
  testing::conf::Trial t;
  t.nodes = 1;
  t.ppn = 8;
  t.hcas = 2;
  t.msg = 1 << 20;
  t.fault_plan = "kill:node=0,hca=1,t=0";
  const coll::AllgatherFn fn = [](mpi::Comm& c, int my, hw::BufView s,
                                  hw::BufView r, std::size_t m, bool ip) {
    return allgather_mha_intra(c, my, s, r, m, ip);
  };
  const auto got = testing::conf::run_allgather(fn, t);
  const auto want = testing::conf::reference_allgather(t);
  EXPECT_EQ(testing::conf::diff_results(got, want), "");
}

}  // namespace
}  // namespace hmca::core
