// The Sec. 7 future-work extension: NUMA hardware model (sockets + UPI)
// and the 3-level NUMA-aware Allgather.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/hierarchical.hpp"
#include "core/hierarchy.hpp"
#include "osu/harness.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::core {
namespace {

coll::AllgatherFn fn_numa3() {
  return [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
            bool ip) {
    return allgather_hierarchy(c, r, s, rv, m, ip,
                               HierarchySpec::derive(c.cluster().spec(), 0));
  };
}

// check_allgather builds thor(nodes, ppn); for NUMA we need our own runner.
double check_numa(int nodes, int ppn, std::size_t msg, bool in_place = false) {
  auto spec = hw::ClusterSpec::thor_numa(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto recv = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    hw::Buffer send = hw::Buffer::data(in_place ? 0 : msg);
    for (std::size_t i = 0; i < msg; ++i) {
      const auto b = hmca::testing::block_byte(r, i);
      if (in_place) {
        recv.bytes()[static_cast<std::size_t>(r) * msg + i] = b;
      } else {
        send.bytes()[i] = b;
      }
    }
    sends.push_back(std::move(send));
    recvs.push_back(std::move(recv));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(hmca::testing::ag_rank_program(
        comm, fn_numa3(), r, sends[static_cast<std::size_t>(r)].view(),
        recvs[static_cast<std::size_t>(r)].view(), msg, in_place));
  }
  eng.run();
  for (int r = 0; r < p; ++r) {
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < msg; ++i) {
        const auto got =
            recvs[static_cast<std::size_t>(r)]
                .bytes()[static_cast<std::size_t>(src) * msg + i];
        EXPECT_EQ(got, hmca::testing::block_byte(src, i))
            << "rank " << r << " block " << src << " byte " << i;
        if (got != hmca::testing::block_byte(src, i)) return eng.now();
      }
    }
  }
  return eng.now();
}

TEST(NumaSpec, ThorNumaSplitsResources) {
  const auto s = hw::ClusterSpec::thor_numa(2, 8);
  EXPECT_EQ(s.sockets_per_node, 2);
  EXPECT_DOUBLE_EQ(s.mem_bw, hw::ClusterSpec::thor(2, 8).mem_bw / 2);
  EXPECT_NO_THROW(s.validate());
}

TEST(NumaSpec, UnevenPpnAcceptedEmptySocketsRejected) {
  // The block distribution handles ppn % sockets != 0 (L=7, S=2 -> {4, 3}),
  // so uneven shapes validate; a socket with no rank at all does not.
  auto s = hw::ClusterSpec::thor_numa(2, 8);
  s.ppn = 7;
  EXPECT_NO_THROW(s.validate());
  s = hw::ClusterSpec::thor_numa(2, 8);
  s.ppn = 1;  // sockets_per_node (2) > ppn: socket 1 hosts no rank
  EXPECT_THROW(s.validate(), hw::SpecError);
  s = hw::ClusterSpec::thor_numa(2, 8);
  s.upi_bw = 0;
  EXPECT_THROW(s.validate(), hw::SpecError);
}

TEST(NumaCluster, SocketMapping) {
  sim::Engine eng;
  hw::Cluster cl(eng, hw::ClusterSpec::thor_numa(2, 8));
  EXPECT_EQ(cl.sockets(), 2);
  EXPECT_EQ(cl.socket_of_local(0), 0);
  EXPECT_EQ(cl.socket_of_local(3), 0);
  EXPECT_EQ(cl.socket_of_local(4), 1);
  EXPECT_EQ(cl.socket_of_local(7), 1);
  EXPECT_EQ(cl.socket_of(12), 1);  // node 1, local 4
  EXPECT_EQ(cl.hca_socket(0), 0);
  EXPECT_EQ(cl.hca_socket(1), 1);
  EXPECT_NE(cl.mem(0, 0), cl.mem(0, 1));
  EXPECT_NE(cl.copy_engine(0, 0), cl.copy_engine(0, 1));
  EXPECT_NE(cl.upi(0), cl.upi(1));
}

TEST(NumaCluster, FlatNodesUnchanged) {
  sim::Engine eng;
  hw::Cluster cl(eng, hw::ClusterSpec::thor(2, 8));
  EXPECT_EQ(cl.sockets(), 1);
  EXPECT_EQ(cl.socket_of(13), 0);
  // Same resource census as before the NUMA extension.
  EXPECT_EQ(cl.net().resource_count(),
            2u * (1 + 1 + 2 * 3));  // mem + engine + hcas*(tx,rx,pcie)
}

TEST(NumaCluster, CrossSocketCopyPaysUpi) {
  sim::Engine eng;
  auto spec = hw::ClusterSpec::thor_numa(1, 8);
  hw::Cluster cl(eng, spec);
  // Same-socket copy: ranks 0 and 1 (socket 0).
  auto same = [&]() -> sim::Task<void> {
    co_await cl.cpu_copy_between(0, 1, 1e9);
  };
  eng.spawn(same());
  eng.run();
  const double t_same = eng.now();

  sim::Engine eng2;
  hw::Cluster cl2(eng2, spec);
  // Cross-socket copy: rank 0 (socket 0) reads rank 4's memory (socket 1).
  auto cross = [&]() -> sim::Task<void> {
    co_await cl2.cpu_copy_between(0, 4, 1e9);
  };
  eng2.spawn(cross());
  eng2.run();
  // A single copy is core-capped either way; UPI (18 GB/s) is above the
  // core rate so the solo times match.
  EXPECT_NEAR(eng2.now(), t_same, 1e-12);

  // But many concurrent cross-socket copies are UPI-bound:
  sim::Engine eng3;
  hw::Cluster cl3(eng3, spec);
  auto cross_many = [&](int r) -> sim::Task<void> {
    co_await cl3.cpu_copy_between(r, 4 + (r % 4), 1e9);
  };
  for (int r = 0; r < 4; ++r) eng3.spawn(cross_many(r));
  eng3.run();
  // 4 copies want 44 GB/s; the binding resource is the tighter of the UPI
  // link and the reading socket's copy engine.
  const double bound = std::min(spec.upi_bw, spec.copy_engine_bw);
  EXPECT_NEAR(eng3.now(), 4e9 / bound, 1e-6);

  // With a constrained UPI (older QPI parts), the link itself binds.
  auto tight = spec;
  tight.upi_bw = 8e9;
  sim::Engine eng4;
  hw::Cluster cl4(eng4, tight);
  auto cross_tight = [&](int r) -> sim::Task<void> {
    co_await cl4.cpu_copy_between(r, 4 + (r % 4), 1e9);
  };
  for (int r = 0; r < 4; ++r) eng4.spawn(cross_tight(r));
  eng4.run();
  EXPECT_NEAR(eng4.now(), 4e9 / tight.upi_bw, 1e-6);
}

// ---- Correctness sweep ----

using Topo = std::tuple<int, int, std::size_t>;
class Numa3Sweep : public ::testing::TestWithParam<Topo> {};

TEST_P(Numa3Sweep, GathersCorrectly) {
  auto [nodes, ppn, msg] = GetParam();
  check_numa(nodes, ppn, msg);
}

INSTANTIATE_TEST_SUITE_P(Topologies, Numa3Sweep,
                         ::testing::Values(Topo{1, 4, 512}, Topo{1, 8, 4096},
                                           Topo{2, 4, 1024},
                                           Topo{2, 8, 65536},
                                           Topo{3, 6, 100},   // non-p2, odd
                                           Topo{4, 2, 2048}));

TEST(Numa3, InPlace) { check_numa(2, 4, 2048, true); }

TEST(Numa3, FallsBackOnFlatNodes) {
  // sockets == 1: numa3 == MHA-inter; verified by the generic checker.
  hmca::testing::check_allgather(fn_numa3(), 2, 4, 4096);
}

// ---- The point of the extension: less UPI traffic ----

TEST(Numa3Perf, BeatsSocketObliviousDesignWhenUpiBinds) {
  // The 3-level design pays off when the UPI link is the scarce resource:
  // socket-oblivious direct spread reads ~half its blocks cross-socket
  // (l^2/2 block crossings per node), while the 3-level design crosses
  // each remote-socket byte roughly once.
  // Single node isolates the aggregation phase where the designs differ.
  auto spec = hw::ClusterSpec::thor_numa(1, 32);
  spec.upi_bw = 8e9;  // UPI-constrained part
  spec.carry_data = false;
  const std::size_t msg = 1u << 20;
  const double t_flat = osu::measure_allgather(
      spec,
      [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv, std::size_t m,
         bool ip) {
        return allgather_hierarchical(c, r, s, rv, m, ip, HierOptions{});
      },
      msg);
  const double t_numa = osu::measure_allgather(spec, fn_numa3(), msg);
  // With HCA offload active, the adapters already bypass the UPI link for
  // part of the traffic, so the 3-level gain on top is moderate.
  EXPECT_LT(t_numa, 0.95 * t_flat);

  // With the offload disabled (pure CPU copies) the UPI saving is pure:
  // socket-oblivious direct spread crosses UPI for ~half of all block
  // reads, the 3-level design roughly once per remote byte.
  auto flat_cma = [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                     std::size_t m, bool ip) {
    HierOptions o;
    o.phase1 = Phase1Mode::kCmaDirect;
    return allgather_hierarchical(c, r, s, rv, m, ip, o);
  };
  auto numa_cma = [](mpi::Comm& c, int r, hw::BufView s, hw::BufView rv,
                     std::size_t m, bool ip) {
    HierOptions o;
    o.phase1 = Phase1Mode::kNumaTwoLevel;
    o.offload = 0.0;
    return allgather_hierarchical(c, r, s, rv, m, ip, o);
  };
  const double t_flat_cma = osu::measure_allgather(spec, flat_cma, msg);
  const double t_numa_cma = osu::measure_allgather(spec, numa_cma, msg);
  EXPECT_LT(t_numa_cma, 0.8 * t_flat_cma);
}

}  // namespace
}  // namespace hmca::core
