// Shared-memory region, chunk publication, and the node-share registry.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "hw/cluster.hpp"
#include "shm/shm.hpp"
#include "sim/engine.hpp"

namespace hmca::shm {
namespace {

struct Fixture {
  Fixture() : cl(eng, hw::ClusterSpec::thor(1, 4)) {}
  sim::Engine eng;
  hw::Cluster cl;
};

TEST(ShmRegion, CopyInPublishMakesChunkVisible) {
  Fixture f;
  ShmRegion region(f.cl, 0, 1024);
  auto src = hw::Buffer::data(256);
  std::memset(src.bytes(), 'k', 256);
  auto leader = [&]() -> sim::Task<void> {
    co_await region.copy_in_publish(0, src.view(), 512);
  };
  f.eng.spawn(leader());
  f.eng.run();
  ASSERT_EQ(region.published(), 1u);
  EXPECT_EQ(region.chunk(0).offset, 512u);
  EXPECT_EQ(region.chunk(0).len, 256u);
  EXPECT_EQ(static_cast<char>(*region.view(512, 1).ptr), 'k');
}

TEST(ShmRegion, MembersWaitForPublication) {
  Fixture f;
  ShmRegion region(f.cl, 0, 4096);
  auto src = hw::Buffer::data(1024);
  std::memset(src.bytes(), 'm', 1024);
  auto dst = hw::Buffer::data(1024);
  double member_done = -1;
  auto leader = [&]() -> sim::Task<void> {
    co_await f.eng.sleep(2.0);
    co_await region.copy_in_publish(0, src.view(), 0);
  };
  auto member = [&]() -> sim::Task<void> {
    co_await region.wait_published(1);
    co_await region.copy_out(1, 0, dst.view());
    member_done = f.eng.now();
  };
  f.eng.spawn(leader());
  f.eng.spawn(member());
  f.eng.run();
  EXPECT_GT(member_done, 2.0);
  EXPECT_EQ(dst.as<char>()[1023], 'm');
}

TEST(ShmRegion, PublicationOrderDrivesConsumption) {
  Fixture f;
  ShmRegion region(f.cl, 0, 4096);
  // Publish out-of-offset-order; consumers see publication order.
  region.publish(2048, 100);
  region.publish(0, 200);
  EXPECT_EQ(region.chunk(0).offset, 2048u);
  EXPECT_EQ(region.chunk(1).offset, 0u);
}

TEST(ShmRegion, CopyOutSizeMismatchThrows) {
  Fixture f;
  ShmRegion region(f.cl, 0, 4096);
  region.publish(0, 128);
  auto dst = hw::Buffer::data(64);
  auto member = [&]() -> sim::Task<void> {
    co_await region.copy_out(1, 0, dst.view());
  };
  f.eng.spawn(member());
  EXPECT_THROW(f.eng.run(), std::invalid_argument);
}

TEST(ShmRegion, ConcurrentCopyOutsContendOnMemory) {
  // The paper's cg(M, L-1) congestion: more copy-out peers, slower each.
  auto measure = [](int peers) {
    sim::Engine eng;
    hw::Cluster cl(eng, hw::ClusterSpec::thor(1, 32));
    auto spec = cl.spec();
    ShmRegion region(cl, 0, 64 << 20);
    region.publish(0, 64 << 20);
    auto dst = hw::Buffer::phantom(64 << 20);
    auto member = [&](int r) -> sim::Task<void> {
      co_await region.copy_out(r, 0, dst.view());
    };
    for (int r = 0; r < peers; ++r) eng.spawn(member(r));
    eng.run();
    (void)spec;
    return eng.now();
  };
  const double t1 = measure(1);
  const double t8 = measure(8);
  const double t31 = measure(31);
  EXPECT_LT(t1, t8);
  EXPECT_LT(t8, t31);
  // 31 concurrent copy-outs are bound by the node copy engine: each gets
  // copy_engine_bw/31 ~ 0.97 GB/s vs 11 GB/s solo -> factor ~ 11.4.
  EXPECT_GT(t31 / t1, 8.0);
  EXPECT_LT(t31 / t1, 13.0);
}

TEST(NodeShare, AllPartiesGetSameObject) {
  NodeShare share;
  auto factory = [] { return std::make_shared<int>(7); };
  auto a = share.acquire<int>(0, 42, 3, factory);
  auto b = share.acquire<int>(0, 42, 3, factory);
  auto c = share.acquire<int>(0, 42, 3, factory);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b.get(), c.get());
  EXPECT_EQ(share.pending_entries(), 0u);  // all takes consumed
}

TEST(NodeShare, DistinctKeysGetDistinctObjects) {
  NodeShare share;
  int builds = 0;
  auto factory = [&] {
    ++builds;
    return std::make_shared<int>(builds);
  };
  auto a = share.acquire<int>(0, 1, 1, factory);
  auto b = share.acquire<int>(0, 2, 1, factory);
  auto c = share.acquire<int>(1, 1, 1, factory);
  EXPECT_EQ(builds, 3);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(NodeShare, EntryPersistsUntilLastParty) {
  NodeShare share;
  auto factory = [] { return std::make_shared<int>(0); };
  auto a = share.acquire<int>(0, 9, 2, factory);
  EXPECT_EQ(share.pending_entries(), 1u);
  auto b = share.acquire<int>(0, 9, 2, factory);
  EXPECT_EQ(share.pending_entries(), 0u);
  EXPECT_EQ(a.get(), b.get());
}

}  // namespace
}  // namespace hmca::shm
