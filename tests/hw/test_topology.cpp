// Topology construction surfaces: the fluent ClusterSpecBuilder (eager
// per-setter validation, total-preserving socket splits), the --topo
// key=value grammar (hw::apply_topo), and the block-distribution audit of
// the socket/HCA mapping helpers for the uneven cases ppn % sockets != 0
// and hcas % sockets != 0.
#include <gtest/gtest.h>

#include <string>

#include "hw/cluster.hpp"
#include "hw/spec.hpp"
#include "sim/engine.hpp"

namespace hmca::hw {
namespace {

// ---- ClusterSpecBuilder ----

TEST(ClusterSpecBuilderTest, SettersApplyAndValidateEagerly) {
  const auto spec = ClusterSpecBuilder(ClusterSpec::thor(2, 4))
                        .nodes(3)
                        .ppn(8)
                        .hcas(4)
                        .sockets(2)
                        .hca_bw(10e9)
                        .upi_bw(9e9)
                        .carry_data(false)
                        .build();
  EXPECT_EQ(spec.nodes, 3);
  EXPECT_EQ(spec.ppn, 8);
  EXPECT_EQ(spec.hcas_per_node, 4);
  EXPECT_EQ(spec.sockets_per_node, 2);
  EXPECT_EQ(spec.hca_bw, 10e9);
  EXPECT_EQ(spec.upi_bw, 9e9);
  EXPECT_FALSE(spec.carry_data);

  EXPECT_THROW(ClusterSpecBuilder{}.nodes(0), SpecError);
  EXPECT_THROW(ClusterSpecBuilder{}.ppn(-1), SpecError);
  EXPECT_THROW(ClusterSpecBuilder{}.hcas(0), SpecError);
  EXPECT_THROW(ClusterSpecBuilder{}.sockets(0), SpecError);
  EXPECT_THROW(ClusterSpecBuilder{}.hca_bw(0), SpecError);
  EXPECT_THROW(ClusterSpecBuilder{}.upi_bw(-1e9), SpecError);
}

TEST(ClusterSpecBuilderTest, SocketSplitPreservesNodeTotals) {
  // sockets(2) on flat thor must reproduce thor_numa exactly: per-socket
  // capacities are the node totals divided by the socket count.
  const auto flat = ClusterSpec::thor(4, 32);
  const auto split = ClusterSpecBuilder(flat).sockets(2).build();
  const auto numa = ClusterSpec::thor_numa(4, 32);
  EXPECT_EQ(split.sockets_per_node, numa.sockets_per_node);
  EXPECT_EQ(split.mem_bw, numa.mem_bw);
  EXPECT_EQ(split.copy_engine_bw, numa.copy_engine_bw);
  // And the round trip: re-flattening a numa base restores the totals.
  const auto back = ClusterSpecBuilder(numa).sockets(1).build();
  EXPECT_EQ(back.mem_bw, flat.mem_bw);
  EXPECT_EQ(back.copy_engine_bw, flat.copy_engine_bw);
}

TEST(ClusterSpecBuilderTest, BuildEnforcesCrossFieldRules) {
  // Every socket must host a rank; uneven ppn is fine.
  EXPECT_THROW(ClusterSpecBuilder(ClusterSpec::thor(2, 1)).sockets(2).build(),
               SpecError);
  EXPECT_NO_THROW(
      ClusterSpecBuilder(ClusterSpec::thor(2, 7)).sockets(2).build());
  EXPECT_THROW(ClusterSpecBuilder{}.sockets(9).ppn(16).build(), SpecError);
}

// ---- apply_topo grammar ----

TEST(ApplyTopoTest, EmptyReturnsBaseUnchanged) {
  const auto base = ClusterSpec::thor_numa(2, 8);
  const auto out = apply_topo(base, "");
  EXPECT_EQ(out.nodes, base.nodes);
  EXPECT_EQ(out.ppn, base.ppn);
  EXPECT_EQ(out.sockets_per_node, base.sockets_per_node);
  EXPECT_EQ(out.mem_bw, base.mem_bw);
}

TEST(ApplyTopoTest, AppliesEveryKnownKey) {
  const auto out = apply_topo(
      ClusterSpec::thor(2, 4),
      "nodes=8,ppn=16,hcas=4,sockets=2,hca_bw=25e9,upi_bw=9e9");
  EXPECT_EQ(out.nodes, 8);
  EXPECT_EQ(out.ppn, 16);
  EXPECT_EQ(out.hcas_per_node, 4);
  EXPECT_EQ(out.sockets_per_node, 2);
  EXPECT_EQ(out.hca_bw, 25e9);
  EXPECT_EQ(out.upi_bw, 9e9);
  // The socket split goes through the builder: totals preserved.
  EXPECT_EQ(out.mem_bw, ClusterSpec::thor(1, 1).mem_bw / 2);
}

TEST(ApplyTopoTest, RejectsMalformedInput) {
  const auto base = ClusterSpec::thor(2, 4);
  EXPECT_THROW(apply_topo(base, "gpus=4"), SpecError);       // unknown key
  EXPECT_THROW(apply_topo(base, "nodes"), SpecError);        // no '='
  EXPECT_THROW(apply_topo(base, "nodes="), SpecError);       // no value
  EXPECT_THROW(apply_topo(base, "=4"), SpecError);           // no key
  EXPECT_THROW(apply_topo(base, "nodes=zero"), SpecError);   // bad int
  EXPECT_THROW(apply_topo(base, "nodes=0"), SpecError);      // range
  EXPECT_THROW(apply_topo(base, "hca_bw=-1"), SpecError);    // bad double
  EXPECT_THROW(apply_topo(base, "ppn=1,sockets=2"), SpecError);  // cross-field
}

// ---- Block-distribution audit (uneven ppn / hcas over sockets) ----

/// socket_first_local must be the exact inverse of socket_of_local:
/// contiguous spans, sizes differing by at most one, earlier sockets
/// larger, every local rank inside its socket's span.
void audit_rank_blocks(int ppn, int sockets) {
  SCOPED_TRACE("ppn=" + std::to_string(ppn) +
               " sockets=" + std::to_string(sockets));
  auto spec = ClusterSpecBuilder(ClusterSpec::thor(1, ppn))
                  .sockets(sockets)
                  .build();
  sim::Engine eng;
  Cluster cl(eng, spec);
  ASSERT_EQ(cl.socket_first_local(0), 0);
  ASSERT_EQ(cl.socket_first_local(sockets), ppn);
  const int large = (ppn + sockets - 1) / sockets;
  for (int s = 0; s < sockets; ++s) {
    const int first = cl.socket_first_local(s);
    const int size = cl.socket_size(s);
    ASSERT_GE(size, 1);
    ASSERT_TRUE(size == large || size == large - 1 || ppn % sockets == 0);
    ASSERT_EQ(first + size, cl.socket_first_local(s + 1));
    for (int l = first; l < first + size; ++l) {
      ASSERT_EQ(cl.socket_of_local(l), s) << "local " << l;
    }
  }
  // Earlier sockets never smaller than later ones.
  for (int s = 0; s + 1 < sockets; ++s) {
    ASSERT_GE(cl.socket_size(s), cl.socket_size(s + 1));
  }
}

TEST(SocketMappingTest, RankBlockDistribution) {
  audit_rank_blocks(8, 2);   // even
  audit_rank_blocks(7, 2);   // {4, 3}
  audit_rank_blocks(8, 3);   // {3, 3, 2}
  audit_rank_blocks(5, 4);   // {2, 1, 1, 1}
  audit_rank_blocks(3, 3);   // one rank per socket
}

TEST(SocketMappingTest, DocumentedUnevenExample) {
  // The ClusterSpec doc's worked example: L=7, S=2 -> {4, 3}.
  auto spec =
      ClusterSpecBuilder(ClusterSpec::thor(2, 7)).sockets(2).build();
  sim::Engine eng;
  Cluster cl(eng, spec);
  EXPECT_EQ(cl.socket_size(0), 4);
  EXPECT_EQ(cl.socket_size(1), 3);
  EXPECT_EQ(cl.socket_first_local(1), 4);
  EXPECT_EQ(cl.socket_of_local(3), 0);
  EXPECT_EQ(cl.socket_of_local(4), 1);
  // Global-rank view on node 1.
  EXPECT_EQ(cl.socket_of(7 + 3), 0);
  EXPECT_EQ(cl.socket_of(7 + 4), 1);
}

/// hca_socket and socket_hca_first/count share the rank helpers' block
/// distribution; hcas need not divide sockets and a socket may own zero
/// adapters.
void audit_hca_blocks(int hcas, int sockets, int ppn) {
  SCOPED_TRACE("hcas=" + std::to_string(hcas) +
               " sockets=" + std::to_string(sockets));
  auto spec = ClusterSpecBuilder(ClusterSpec::multi_rail(1, ppn, hcas))
                  .sockets(sockets)
                  .build();
  sim::Engine eng;
  Cluster cl(eng, spec);
  ASSERT_EQ(cl.socket_hca_first(0), 0);
  ASSERT_EQ(cl.socket_hca_first(sockets), hcas);
  int covered = 0;
  for (int s = 0; s < sockets; ++s) {
    const int first = cl.socket_hca_first(s);
    const int count = cl.socket_hca_count(s);
    ASSERT_GE(count, 0);
    ASSERT_EQ(first + count, cl.socket_hca_first(s + 1));
    for (int h = first; h < first + count; ++h) {
      ASSERT_EQ(cl.hca_socket(h), s) << "hca " << h;
    }
    covered += count;
  }
  ASSERT_EQ(covered, hcas);
}

TEST(SocketMappingTest, HcaBlockDistribution) {
  audit_hca_blocks(2, 2, 8);  // one per socket
  audit_hca_blocks(3, 2, 8);  // {2, 1}: doc's worked example
  audit_hca_blocks(8, 2, 8);  // ThetaGPU-like
  audit_hca_blocks(1, 2, 8);  // socket 1 owns no adapter
  audit_hca_blocks(2, 4, 8);  // fewer hcas than sockets
}

TEST(SocketMappingTest, DocumentedHcaExample) {
  // H=3, S=2: adapters {0, 1} on socket 0, {2} on socket 1.
  auto spec = ClusterSpecBuilder(ClusterSpec::multi_rail(1, 8, 3))
                  .sockets(2)
                  .build();
  sim::Engine eng;
  Cluster cl(eng, spec);
  EXPECT_EQ(cl.hca_socket(0), 0);
  EXPECT_EQ(cl.hca_socket(1), 0);
  EXPECT_EQ(cl.hca_socket(2), 1);
  EXPECT_EQ(cl.socket_hca_count(0), 2);
  EXPECT_EQ(cl.socket_hca_count(1), 1);
}

}  // namespace
}  // namespace hmca::hw
