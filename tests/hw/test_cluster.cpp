// Unit tests for cluster construction, topology mapping and primitive ops.
#include <gtest/gtest.h>

#include "hw/cluster.hpp"
#include "hw/spec.hpp"
#include "sim/engine.hpp"

namespace hmca::hw {
namespace {

TEST(Spec, ThorDefaultsMatchPaperTestbed) {
  auto s = ClusterSpec::thor(32, 32);
  EXPECT_EQ(s.nodes, 32);
  EXPECT_EQ(s.ppn, 32);
  EXPECT_EQ(s.hcas_per_node, 2);
  EXPECT_EQ(s.total_ranks(), 1024);
  EXPECT_DOUBLE_EQ(s.hca_bw, 12.5e9);   // HDR100
  EXPECT_DOUBLE_EQ(s.pcie_bw, 12.5e9);  // Gen3 x16
  EXPECT_GT(s.copy_engine_bw, s.core_copy_bw);
  EXPECT_NO_THROW(s.validate());
}

TEST(Spec, MultiRailPreset) {
  auto s = ClusterSpec::multi_rail(4, 8, 8);
  EXPECT_EQ(s.hcas_per_node, 8);  // ThetaGPU-like
  EXPECT_NO_THROW(s.validate());
}

TEST(Spec, ValidationRejectsBadValues) {
  auto s = ClusterSpec::thor(2, 2);
  s.nodes = 0;
  EXPECT_THROW(s.validate(), SpecError);
  s = ClusterSpec::thor(2, 2);
  s.hca_bw = -1;
  EXPECT_THROW(s.validate(), SpecError);
  s = ClusterSpec::thor(2, 2);
  s.wire_latency = -1e-9;
  EXPECT_THROW(s.validate(), SpecError);
}

TEST(Cluster, RankNodeMapping) {
  sim::Engine eng;
  Cluster cl(eng, ClusterSpec::thor(4, 8));
  EXPECT_EQ(cl.world_size(), 32);
  EXPECT_EQ(cl.node_of(0), 0);
  EXPECT_EQ(cl.node_of(7), 0);
  EXPECT_EQ(cl.node_of(8), 1);
  EXPECT_EQ(cl.local_rank(8), 0);
  EXPECT_EQ(cl.local_rank(31), 7);
  EXPECT_EQ(cl.global_rank(3, 7), 31);
}

TEST(Cluster, ResourcesAreDistinct) {
  sim::Engine eng;
  Cluster cl(eng, ClusterSpec::thor(2, 2));
  EXPECT_NE(cl.mem(0), cl.mem(1));
  EXPECT_NE(cl.hca_tx(0, 0), cl.hca_tx(0, 1));
  EXPECT_NE(cl.hca_tx(0, 0), cl.hca_rx(0, 0));
  EXPECT_NE(cl.hca_tx(0, 0), cl.hca_tx(1, 0));
  EXPECT_NE(cl.mem(0), cl.copy_engine(0));
  EXPECT_NE(cl.pcie(0, 0), cl.pcie(0, 1));
  // 2 nodes x (mem + copy_engine + 2 HCAs x (tx + rx + pcie)) = 16.
  EXPECT_EQ(cl.net().resource_count(), 16u);
}

TEST(Cluster, CpuCopyRunsAtCoreRate) {
  sim::Engine eng;
  auto spec = ClusterSpec::thor(1, 2);
  Cluster cl(eng, spec);
  auto t = [&]() -> sim::Task<void> {
    co_await cl.cpu_copy(0, spec.core_copy_bw);  // one core-second of bytes
  };
  eng.spawn(t());
  eng.run();
  // A single copy is core-limited: engine and memory have headroom.
  EXPECT_NEAR(eng.now(), 1.0, 1e-9);
}

TEST(Cluster, ManyCpuCopiesSaturateMemory) {
  sim::Engine eng;
  auto spec = ClusterSpec::thor(1, 32);
  Cluster cl(eng, spec);
  // 16 concurrent copies want 16 x 11 GB/s but the node copy engine caps
  // aggregate CPU-copy payload at copy_engine_bw: per-copy rate is
  // copy_engine_bw / 16 (the paper's `b` congestion factor in action).
  auto t = [&]() -> sim::Task<void> { co_await cl.cpu_copy(0, 1e9); };
  for (int i = 0; i < 16; ++i) eng.spawn(t());
  eng.run();
  const double expect = 1e9 / (spec.copy_engine_bw / 16.0);
  EXPECT_NEAR(eng.now(), expect, expect * 1e-9);
}

TEST(Cluster, ReduceSweepCostsThreeTouches) {
  sim::Engine eng;
  auto spec = ClusterSpec::thor(1, 32);
  Cluster cl(eng, spec);
  // 12 concurrent reduces: the copy engine (30/12 = 2.5 GB/s each) binds
  // before the memory roof (115/3/12 = 3.19 GB/s each).
  auto t = [&]() -> sim::Task<void> { co_await cl.cpu_reduce(0, 1e9); };
  for (int i = 0; i < 12; ++i) eng.spawn(t());
  eng.run();
  const double expect = 1e9 / (spec.copy_engine_bw / 12.0);
  EXPECT_NEAR(eng.now(), expect, expect * 1e-9);
}

TEST(Cluster, NicFlowInterNodeUsesBothMemories) {
  sim::Engine eng;
  Cluster cl(eng, ClusterSpec::thor(2, 1));
  auto f = cl.nic_flow(0, 0, 1, 1, 1000.0);
  ASSERT_EQ(f.uses.size(), 6u);
  EXPECT_EQ(f.uses[0].resource, cl.hca_tx(0, 0));
  EXPECT_EQ(f.uses[1].resource, cl.hca_rx(1, 1));
  EXPECT_EQ(f.uses[2].resource, cl.pcie(0, 0));
  EXPECT_EQ(f.uses[3].resource, cl.pcie(1, 1));
  EXPECT_EQ(f.uses[4].resource, cl.mem(0));
  EXPECT_EQ(f.uses[5].resource, cl.mem(1));
}

TEST(Cluster, NicFlowLoopbackDoublesMemoryAndPcieWeight) {
  sim::Engine eng;
  Cluster cl(eng, ClusterSpec::thor(2, 1));
  auto f = cl.nic_flow(0, 1, 0, 1, 1000.0);
  ASSERT_EQ(f.uses.size(), 4u);
  EXPECT_EQ(f.uses[2].resource, cl.pcie(0, 1));
  EXPECT_DOUBLE_EQ(f.uses[2].weight, 2.0);  // DMA out + DMA in
  EXPECT_EQ(f.uses[3].resource, cl.mem(0));
  EXPECT_DOUBLE_EQ(f.uses[3].weight, 2.0);
}

TEST(Cluster, CrossAdapterLoopbackSplitsPcie) {
  sim::Engine eng;
  Cluster cl(eng, ClusterSpec::thor(1, 2));
  auto f = cl.nic_flow(0, 0, 0, 1, 1000.0);
  ASSERT_EQ(f.uses.size(), 5u);
  EXPECT_EQ(f.uses[2].resource, cl.pcie(0, 0));
  EXPECT_DOUBLE_EQ(f.uses[2].weight, 1.0);
  EXPECT_EQ(f.uses[4].resource, cl.pcie(0, 1));
  EXPECT_DOUBLE_EQ(f.uses[4].weight, 1.0);
}

TEST(Cluster, RoundRobinRailSelection) {
  sim::Engine eng;
  Cluster cl(eng, ClusterSpec::thor(2, 1));
  EXPECT_EQ(cl.next_rail(0), 0);
  EXPECT_EQ(cl.next_rail(0), 1);
  EXPECT_EQ(cl.next_rail(0), 0);
  EXPECT_EQ(cl.next_rail(1), 0);  // per-node counters
}

TEST(Cluster, TwoRailsDoubleAggregateBandwidth) {
  sim::Engine eng;
  auto spec = ClusterSpec::thor(2, 1);
  Cluster cl(eng, spec);
  // One flow per rail, node0 -> node1, 12.5 GB each: both run at full rail
  // rate concurrently (memory: 2 x 12.5 = 25 GB/s < 115 GB/s).
  auto t = [&](int h) -> sim::Task<void> {
    co_await cl.net().transfer(cl.nic_flow(0, h, 1, h, 12.5e9));
  };
  eng.spawn(t(0));
  eng.spawn(t(1));
  eng.run();
  EXPECT_NEAR(eng.now(), 1.0, 1e-9);
}

}  // namespace
}  // namespace hmca::hw
