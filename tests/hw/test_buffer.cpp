// Unit tests for real/phantom buffers and payload copies.
#include <gtest/gtest.h>

#include "hw/buffer.hpp"

namespace hmca::hw {
namespace {

TEST(Buffer, RealBufferIsZeroInitialized) {
  auto b = Buffer::data(16);
  EXPECT_TRUE(b.has_data());
  EXPECT_EQ(b.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(b.bytes()[i], std::byte{0});
  }
}

TEST(Buffer, PhantomBufferHasSizeButNoStorage) {
  auto b = Buffer::phantom(1 << 30);  // 1 GiB costs nothing
  EXPECT_FALSE(b.has_data());
  EXPECT_EQ(b.size(), 1u << 30);
  EXPECT_EQ(b.bytes(), nullptr);
  EXPECT_FALSE(b.view().real());
}

TEST(Buffer, MakeSelectsMode) {
  EXPECT_TRUE(Buffer::make(8, true).has_data());
  EXPECT_FALSE(Buffer::make(8, false).has_data());
}

TEST(Buffer, SliceViewsSubrange) {
  auto b = Buffer::data(10);
  b.as<char>()[4] = 'x';
  auto v = b.slice(4, 3);
  EXPECT_EQ(v.len, 3u);
  EXPECT_EQ(static_cast<char>(*v.ptr), 'x');
}

TEST(Buffer, SliceOutOfRangeThrows) {
  auto b = Buffer::data(10);
  EXPECT_THROW(b.slice(8, 3), std::out_of_range);
  EXPECT_NO_THROW(b.slice(8, 2));
}

TEST(CopyPayload, CopiesRealToReal) {
  auto a = Buffer::data(4);
  auto b = Buffer::data(4);
  a.as<char>()[0] = 'h';
  a.as<char>()[3] = '!';
  copy_payload(b.view(), a.view());
  EXPECT_EQ(b.as<char>()[0], 'h');
  EXPECT_EQ(b.as<char>()[3], '!');
}

TEST(CopyPayload, PhantomIsNoOp) {
  auto a = Buffer::phantom(4);
  auto b = Buffer::data(4);
  EXPECT_NO_THROW(copy_payload(b.view(), a.view()));
  EXPECT_NO_THROW(copy_payload(a.view(), b.view()));
}

TEST(CopyPayload, SizeMismatchThrows) {
  auto a = Buffer::data(4);
  auto b = Buffer::data(5);
  EXPECT_THROW(copy_payload(b.view(), a.view()), std::invalid_argument);
}

TEST(CopyPayload, OverlappingRangesHandled) {
  auto a = Buffer::data(8);
  for (int i = 0; i < 8; ++i) a.as<char>()[i] = static_cast<char>('a' + i);
  copy_payload(a.slice(2, 4), a.slice(0, 4));  // memmove semantics
  EXPECT_EQ(a.as<char>()[2], 'a');
  EXPECT_EQ(a.as<char>()[5], 'd');
}

}  // namespace
}  // namespace hmca::hw
