// Communicators, requests, sub-communicator isolation, barriers.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace hmca::mpi {
namespace {

hw::Buffer filled(std::size_t n, char c) {
  auto b = hw::Buffer::data(n);
  std::memset(b.bytes(), c, n);
  return b;
}

TEST(Comm, WorldCoversAllRanks) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(4, 8));
  auto& comm = w.comm_world();
  EXPECT_EQ(comm.size(), 32);
  EXPECT_EQ(comm.to_global(13), 13);
  EXPECT_EQ(comm.from_global(13), 13);
  EXPECT_EQ(comm.node_of(13), 1);
  EXPECT_EQ(comm.node_local_rank(13), 5);
}

TEST(Comm, SubCommRemapsRanks) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(4, 4));
  auto& leaders = w.leader_comm();
  EXPECT_EQ(leaders.size(), 4);
  EXPECT_EQ(leaders.to_global(2), 8);
  EXPECT_EQ(leaders.from_global(8), 2);
  EXPECT_EQ(leaders.from_global(9), -1);
}

TEST(Comm, NodeCommIsCached) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 4));
  auto& a = w.node_comm(1);
  auto& b = w.node_comm(1);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 4);
  EXPECT_EQ(a.to_global(0), 4);
}

TEST(Comm, InvalidSubCommRejected) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 2));
  EXPECT_THROW(w.create_comm({}), std::invalid_argument);
  EXPECT_THROW(w.create_comm({0, 0}), std::invalid_argument);
  EXPECT_THROW(w.create_comm({0, 99}), std::invalid_argument);
}

TEST(Comm, SendRecvThroughSubComm) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 2));
  auto& leaders = w.leader_comm();  // global ranks 0 and 2
  auto src = filled(64, 'L');
  auto dst = hw::Buffer::data(64);
  auto sender = [&]() -> sim::Task<void> {
    co_await leaders.send(0, 1, 4, src.view());
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await leaders.recv(1, 0, 4, dst.view());
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  EXPECT_EQ(dst.as<char>()[0], 'L');
}

TEST(Comm, ContextsIsolateIdenticalTags) {
  // Same (src, dst, tag) on two comms must not cross-match. World sends
  // 'W' with tag 5; leader comm sends 'L' with tag 5, posted first.
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 2));
  auto& world = w.comm_world();
  auto& leaders = w.leader_comm();
  auto ws = filled(16, 'W');
  auto ls = filled(16, 'L');
  auto wd = hw::Buffer::data(16);
  auto ld = hw::Buffer::data(16);
  auto sender = [&]() -> sim::Task<void> {
    co_await world.send(0, 2, 5, ws.view());   // global 0 -> 2
    co_await leaders.send(0, 1, 5, ls.view()); // also global 0 -> 2
  };
  auto receiver = [&]() -> sim::Task<void> {
    co_await leaders.recv(1, 0, 5, ld.view());
    co_await world.recv(2, 0, 5, wd.view());
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  EXPECT_EQ(ld.as<char>()[0], 'L');
  EXPECT_EQ(wd.as<char>()[0], 'W');
}

TEST(Comm, IsendIrecvWaitAll) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  const int k = 4;
  std::vector<hw::Buffer> srcs, dsts;
  for (int i = 0; i < k; ++i) {
    srcs.push_back(filled(256, static_cast<char>('0' + i)));
    dsts.push_back(hw::Buffer::data(256));
  }
  auto sender = [&]() -> sim::Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < k; ++i) {
      reqs.push_back(comm.isend(0, 1, i, srcs[static_cast<size_t>(i)].view()));
    }
    co_await comm.wait_all(std::move(reqs));
  };
  auto receiver = [&]() -> sim::Task<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < k; ++i) {
      reqs.push_back(comm.irecv(1, 0, i, dsts[static_cast<size_t>(i)].view()));
    }
    co_await comm.wait_all(std::move(reqs));
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(dsts[static_cast<size_t>(i)].as<char>()[0], '0' + i);
  }
}

TEST(Comm, SendrecvExchangesConcurrently) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  const std::size_t n = 1 << 20;
  auto a_out = filled(n, 'a');
  auto b_out = filled(n, 'b');
  auto a_in = hw::Buffer::data(n);
  auto b_in = hw::Buffer::data(n);
  auto rank0 = [&]() -> sim::Task<void> {
    co_await comm.sendrecv(0, 1, 0, a_out.view(), 1, 0, a_in.view());
  };
  auto rank1 = [&]() -> sim::Task<void> {
    co_await comm.sendrecv(1, 0, 0, b_out.view(), 0, 0, b_in.view());
  };
  eng.spawn(rank0());
  eng.spawn(rank1());
  eng.run();
  EXPECT_EQ(a_in.as<char>()[0], 'b');
  EXPECT_EQ(b_in.as<char>()[0], 'a');
  // Full duplex: the exchange should cost about one direction's time, not
  // two (rails are full duplex).
  const double one_way = static_cast<double>(n) / w.cluster().spec().hca_bw;
  EXPECT_LT(eng.now(), 1.5 * one_way);
}

TEST(Comm, BarrierAlignsRanks) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 2));
  auto& comm = w.comm_world();
  std::vector<double> t(4, -1);
  auto rank = [&](int r) -> sim::Task<void> {
    co_await eng.sleep(0.5 * r);
    co_await comm.barrier(r);
    t[static_cast<size_t>(r)] = eng.now();
  };
  for (int r = 0; r < 4; ++r) eng.spawn(rank(r));
  eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(t[static_cast<size_t>(r)], 1.5);
}

TEST(Comm, OpSeqIsPerRankMonotonic) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 2));
  auto& comm = w.comm_world();
  EXPECT_EQ(comm.next_op_seq(0), 0u);
  EXPECT_EQ(comm.next_op_seq(0), 1u);
  EXPECT_EQ(comm.next_op_seq(1), 0u);
}

TEST(Comm, TagOutOfRangeThrows) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  auto b = filled(8, 'x');
  auto t = [&]() -> sim::Task<void> {
    co_await comm.send(0, 1, kMaxUserTag + 1, b.view());
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

TEST(Comm, WaitOnInvalidRequestThrows) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  auto t = [&]() -> sim::Task<void> { co_await comm.wait(Request{}); };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

TEST(Comm, TestOnInvalidRequestThrows) {
  EXPECT_THROW(Request{}.test(), std::invalid_argument);
}

TEST(Comm, RequestTestProbesCompletion) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  auto src = filled(64, 'T');
  auto dst = hw::Buffer::data(64);
  Request probe;
  auto t = [&]() -> sim::Task<void> {
    Request s = comm.isend(0, 1, 0, src.view());
    probe = comm.irecv(1, 0, 0, dst.view());
    EXPECT_FALSE(probe.test());  // posted this instant, nothing ran yet
    co_await comm.wait(std::move(s));
  };
  eng.spawn(t());
  eng.run();
  EXPECT_TRUE(probe.valid());
  EXPECT_TRUE(probe.test());
  EXPECT_EQ(dst.as<char>()[0], 'T');
}

TEST(Comm, WaitAnyCompletesInArrivalOrder) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  // Tag 0 is an eager-sized message; tag 1 a rendezvous-sized one, so the
  // small transfer must complete (and wait_any return) first.
  auto s0 = filled(32, 'A');
  auto s1 = filled(1 << 20, 'B');
  auto d0 = hw::Buffer::data(32);
  auto d1 = hw::Buffer::data(1 << 20);
  std::vector<Request> reqs;
  std::vector<std::size_t> order;
  auto sender = [&]() -> sim::Task<void> {
    std::vector<Request> out;
    out.push_back(comm.isend(0, 1, 0, s0.view()));
    out.push_back(comm.isend(0, 1, 1, s1.view()));
    co_await comm.wait_all(std::move(out));
  };
  auto receiver = [&]() -> sim::Task<void> {
    reqs.push_back(comm.irecv(1, 0, 0, d0.view()));
    reqs.push_back(comm.irecv(1, 0, 1, d1.view()));
    for (std::size_t left = reqs.size(); left > 0; --left) {
      order.push_back(co_await comm.wait_any(reqs));
    }
  };
  eng.spawn(sender());
  eng.spawn(receiver());
  eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  // Completed slots were reset so repeated wait_any never re-returns them.
  EXPECT_FALSE(reqs[0].valid());
  EXPECT_FALSE(reqs[1].valid());
  EXPECT_EQ(d0.as<char>()[0], 'A');
  EXPECT_EQ(d1.as<char>()[0], 'B');
}

TEST(Comm, WaitAnyWithNoValidRequestThrows) {
  sim::Engine eng;
  World w(eng, hw::ClusterSpec::thor(2, 1));
  auto& comm = w.comm_world();
  auto t = [&]() -> sim::Task<void> {
    std::vector<Request> rs(2);  // all invalid
    co_await comm.wait_any(rs);
  };
  eng.spawn(t());
  EXPECT_THROW(eng.run(), std::invalid_argument);
}

}  // namespace
}  // namespace hmca::mpi
