// Datatype sizes and reduction operator arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hw/buffer.hpp"
#include "mpi/datatype.hpp"

namespace hmca::mpi {
namespace {

TEST(Dtype, Sizes) {
  EXPECT_EQ(dtype_size(Dtype::kByte), 1u);
  EXPECT_EQ(dtype_size(Dtype::kInt32), 4u);
  EXPECT_EQ(dtype_size(Dtype::kInt64), 8u);
  EXPECT_EQ(dtype_size(Dtype::kFloat), 4u);
  EXPECT_EQ(dtype_size(Dtype::kDouble), 8u);
}

template <class T>
hw::Buffer typed_buffer(const std::vector<T>& v) {
  auto b = hw::Buffer::data(v.size() * sizeof(T));
  std::memcpy(b.bytes(), v.data(), v.size() * sizeof(T));
  return b;
}

TEST(Reduce, SumInt32) {
  auto a = typed_buffer<std::int32_t>({1, 2, 3});
  auto b = typed_buffer<std::int32_t>({10, 20, 30});
  apply_reduce(ReduceOp::kSum, Dtype::kInt32, a.view(), b.view(), 3);
  EXPECT_EQ(a.as<std::int32_t>()[0], 11);
  EXPECT_EQ(a.as<std::int32_t>()[2], 33);
}

TEST(Reduce, MaxDouble) {
  auto a = typed_buffer<double>({1.5, 9.0, -3.0});
  auto b = typed_buffer<double>({2.5, 1.0, -1.0});
  apply_reduce(ReduceOp::kMax, Dtype::kDouble, a.view(), b.view(), 3);
  EXPECT_DOUBLE_EQ(a.as<double>()[0], 2.5);
  EXPECT_DOUBLE_EQ(a.as<double>()[1], 9.0);
  EXPECT_DOUBLE_EQ(a.as<double>()[2], -1.0);
}

TEST(Reduce, MinFloat) {
  auto a = typed_buffer<float>({1.0f, -2.0f});
  auto b = typed_buffer<float>({0.5f, 3.0f});
  apply_reduce(ReduceOp::kMin, Dtype::kFloat, a.view(), b.view(), 2);
  EXPECT_FLOAT_EQ(a.as<float>()[0], 0.5f);
  EXPECT_FLOAT_EQ(a.as<float>()[1], -2.0f);
}

TEST(Reduce, ProdInt64) {
  auto a = typed_buffer<std::int64_t>({2, 3});
  auto b = typed_buffer<std::int64_t>({5, 7});
  apply_reduce(ReduceOp::kProd, Dtype::kInt64, a.view(), b.view(), 2);
  EXPECT_EQ(a.as<std::int64_t>()[0], 10);
  EXPECT_EQ(a.as<std::int64_t>()[1], 21);
}

TEST(Reduce, PhantomViewsAreNoOp) {
  auto a = hw::Buffer::phantom(12);
  auto b = hw::Buffer::phantom(12);
  EXPECT_NO_THROW(
      apply_reduce(ReduceOp::kSum, Dtype::kInt32, a.view(), b.view(), 3));
}

TEST(Reduce, ByteArithmeticRejected) {
  auto a = hw::Buffer::data(4);
  auto b = hw::Buffer::data(4);
  EXPECT_THROW(apply_reduce(ReduceOp::kSum, Dtype::kByte, a.view(), b.view(), 4),
               std::invalid_argument);
}

TEST(Reduce, TooSmallViewRejected) {
  auto a = hw::Buffer::data(8);
  auto b = hw::Buffer::data(8);
  EXPECT_THROW(
      apply_reduce(ReduceOp::kSum, Dtype::kInt32, a.view(), b.view(), 3),
      std::invalid_argument);
}

TEST(Reduce, SumIsAssociativeAcrossChunks) {
  // Reducing in two chunks equals reducing in one (integer sum).
  std::vector<std::int32_t> x{1, 2, 3, 4}, y{5, 6, 7, 8};
  auto whole_a = typed_buffer(x);
  auto whole_b = typed_buffer(y);
  apply_reduce(ReduceOp::kSum, Dtype::kInt32, whole_a.view(), whole_b.view(), 4);

  auto part_a = typed_buffer(x);
  auto part_b = typed_buffer(y);
  apply_reduce(ReduceOp::kSum, Dtype::kInt32, part_a.view().sub(0, 8),
               part_b.view().sub(0, 8), 2);
  apply_reduce(ReduceOp::kSum, Dtype::kInt32, part_a.view().sub(8, 8),
               part_b.view().sub(8, 8), 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(whole_a.as<std::int32_t>()[i], part_a.as<std::int32_t>()[i]);
  }
}

}  // namespace
}  // namespace hmca::mpi
