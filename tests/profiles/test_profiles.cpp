// Library profiles: registry behaviour, correctness of every profile's
// collectives, and the headline comparison shape (MHA wins the paper's
// regimes).
#include <gtest/gtest.h>

#include "osu/harness.hpp"
#include "profiles/profiles.hpp"
#include "testing/coll_testing.hpp"

namespace hmca::profiles {
namespace {

using hmca::testing::check_allgather;
using hmca::testing::check_allreduce;

TEST(Registry, NamesAndLookup) {
  const auto n = names();
  ASSERT_EQ(n.size(), 3u);
  for (const auto& name : n) {
    EXPECT_EQ(by_name(name).name, name);
  }
  EXPECT_THROW(by_name("openmpi"), std::invalid_argument);
}

TEST(Policy, DeclarativeRulesNameRegistryEntries) {
  const auto& hp = policy("hpcx");
  EXPECT_FALSE(hp.use_selector);
  ASSERT_EQ(hp.allgather.size(), 2u);
  EXPECT_EQ(hp.allgather[0].algo, "bruck");
  EXPECT_EQ(hp.allgather[1].algo, "ring");

  const auto& mv = policy("mvapich");
  ASSERT_EQ(mv.allgather.size(), 4u);
  EXPECT_EQ(mv.allgather[0].algo, "rd_or_bruck");
  EXPECT_EQ(mv.allgather[1].algo, "multi_leader2");
  EXPECT_EQ(mv.allgather[2].algo, "multi_leader1");
  EXPECT_EQ(mv.allgather[3].algo, "ring");

  // Every named algorithm must resolve in the registry.
  auto& reg = coll::Registry::instance();
  for (const auto* p : {&hp, &mv}) {
    for (const auto& r : p->allgather) {
      EXPECT_NE(reg.find_allgather(r.algo), nullptr) << r.algo;
    }
    for (const auto& r : p->allreduce) {
      EXPECT_NE(reg.find_allreduce(r.algo), nullptr) << r.algo;
    }
  }

  EXPECT_TRUE(policy("mha").use_selector);
  EXPECT_THROW(policy("openmpi"), std::invalid_argument);
}

TEST(Policy, RuleChainFallsBackByApplicability) {
  // mvapich large-message dispatch: the multi_leader2 rule is guarded by
  // its registry applicability (world && even ppn), so odd-PPN worlds fall
  // through to multi_leader1 and subset comms to ring — rule order, not
  // hand-wired if/else.
  check_allgather(mvapich().allgather, 2, 3, 16384);  // odd ppn -> leader1
  check_allgather(mvapich().allgather, 2, 1, 16384);  // ppn 1 -> flat ring
}

class ProfileCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileCorrectness, AllgatherSmall) {
  const auto& p = by_name(GetParam());
  check_allgather(p.allgather, 2, 2, 512);
}

TEST_P(ProfileCorrectness, AllgatherLarge) {
  const auto& p = by_name(GetParam());
  check_allgather(p.allgather, 2, 4, 65536);
}

TEST_P(ProfileCorrectness, AllgatherNonPowerOfTwoNodes) {
  const auto& p = by_name(GetParam());
  check_allgather(p.allgather, 3, 2, 16384);
}

TEST_P(ProfileCorrectness, AllgatherSingleNode) {
  const auto& p = by_name(GetParam());
  check_allgather(p.allgather, 1, 4, 262144);
}

TEST_P(ProfileCorrectness, AllreduceSmall) {
  const auto& p = by_name(GetParam());
  check_allreduce(p.allreduce, 2, 2, 64, mpi::ReduceOp::kSum);
}

TEST_P(ProfileCorrectness, AllreduceLarge) {
  const auto& p = by_name(GetParam());
  check_allreduce(p.allreduce, 2, 2, 16384, mpi::ReduceOp::kSum);
}

INSTANTIATE_TEST_SUITE_P(All, ProfileCorrectness,
                         ::testing::Values("mha", "hpcx", "mvapich"));

// ---- The paper's headline comparisons, in miniature ----

TEST(Comparison, MhaWinsIntraNodeLargeMessages) {
  // Fig. 11 regime.
  const auto spec = hw::ClusterSpec::thor(1, 4);
  const std::size_t msg = 4u << 20;
  const double t_mha = osu::measure_allgather(spec, mha().allgather, msg);
  const double t_hpcx = osu::measure_allgather(spec, hpcx().allgather, msg);
  const double t_mva = osu::measure_allgather(spec, mvapich().allgather, msg);
  EXPECT_LT(t_mha, t_hpcx);
  EXPECT_LT(t_mha, t_mva);
}

TEST(Comparison, MhaWinsInterNodeMediumMessages) {
  // Figs. 12-14 medium-message regime, where the paper's peak gains live
  // (the hierarchy removes the P-1 step dependency chain of flat designs).
  const auto spec = hw::ClusterSpec::thor(8, 16);
  const std::size_t msg = 4096;
  const double t_mha = osu::measure_allgather(spec, mha().allgather, msg);
  const double t_hpcx = osu::measure_allgather(spec, hpcx().allgather, msg);
  const double t_mva = osu::measure_allgather(spec, mvapich().allgather, msg);
  EXPECT_LT(t_mha, 0.7 * t_hpcx);
  EXPECT_LT(t_mha, 0.8 * t_mva);
}

TEST(Comparison, MhaStaysCompetitiveAtLargeMessages) {
  // At very large messages every design is bound by the node's aggregate
  // copy throughput and they converge (documented model deviation from the
  // paper's absolute gains; see EXPERIMENTS.md). MHA must not *lose*.
  const auto spec = hw::ClusterSpec::thor(4, 8);
  const std::size_t msg = 65536;
  const double t_mha = osu::measure_allgather(spec, mha().allgather, msg);
  const double t_hpcx = osu::measure_allgather(spec, hpcx().allgather, msg);
  const double t_mva = osu::measure_allgather(spec, mvapich().allgather, msg);
  EXPECT_LT(t_mha, 1.25 * t_hpcx);
  EXPECT_LT(t_mha, 1.05 * t_mva);
}

TEST(Comparison, MhaImprovesLargeAllreduce) {
  // Fig. 15 regime: medium-large vectors at scale.
  const auto spec = hw::ClusterSpec::thor(8, 16);
  const std::size_t bytes = 1u << 20;
  const double t_mha = osu::measure_allreduce(spec, mha().allreduce, bytes);
  const double t_hpcx = osu::measure_allreduce(spec, hpcx().allreduce, bytes);
  EXPECT_LT(t_mha, t_hpcx);
}

TEST(Comparison, DeterministicMeasurements) {
  const auto spec = hw::ClusterSpec::thor(2, 2);
  const double a = osu::measure_allgather(spec, mha().allgather, 4096);
  const double b = osu::measure_allgather(spec, mha().allgather, 4096);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace hmca::profiles
