// Randomized differential conformance harness.
//
// Every registered collective algorithm is run on sampled communicator
// shapes / message sizes / fault plans and byte-compared against a naive
// gather+bcast reference executed on a fault-free world of the same shape.
// All randomness flows from one seed (env HMCA_CONFORMANCE_SEED, fixed
// default otherwise); every failure message carries `Trial::context()`,
// which embeds that seed, so any red run replays exactly with
//   HMCA_CONFORMANCE_SEED=<seed> ctest -L conformance
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "coll/allgather.hpp"
#include "coll/allgatherv.hpp"
#include "coll/alltoall.hpp"
#include "coll/graph.hpp"
#include "coll/reduce_scatter.hpp"
#include "coll/registry.hpp"
#include "hw/buffer.hpp"
#include "hw/spec.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/utilization.hpp"
#include "osu/env.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "trace/trace.hpp"

namespace hmca::testing::conf {

/// Environment variable overriding the suite seed (CI's random leg sets it
/// to the run id; failures print the value for local replay).
inline constexpr const char* kSeedEnv = osu::Env::kConformanceSeed;

/// The suite seed: HMCA_CONFORMANCE_SEED when set (any strtoull base-0
/// form), a fixed default otherwise so plain `ctest` stays reproducible.
inline std::uint64_t suite_seed() {
  if (const auto env = osu::Env::conformance_seed()) return *env;
  return 0xC04F04A11C3ull;
}

/// One sampled conformance trial: a topology, a per-process message size
/// and a fault plan ("" = healthy run).
struct Trial {
  int nodes = 1;
  int ppn = 1;
  int hcas = 1;
  /// NUMA sockets per node (1 = flat). May not divide ppn — imbalanced
  /// socket spans are part of the sampled space.
  int sockets = 1;
  std::size_t msg = 0;
  bool in_place = false;
  std::string fault_plan;
  std::uint64_t seed = 0;  ///< suite seed, for replay instructions
  int index = 0;           ///< trial number within its suite

  int procs() const { return nodes * ppn; }

  /// Replay breadcrumb appended to every assertion in the suite.
  std::string context() const {
    std::ostringstream os;
    os << "[trial " << index << ": nodes=" << nodes << " ppn=" << ppn
       << " hcas=" << hcas << " sockets=" << sockets << " msg=" << msg
       << (in_place ? " in_place" : "") << " faults='" << fault_plan
       << "'] replay with " << kSeedEnv << "=" << seed;
    return os.str();
  }
};

inline hw::ClusterSpec spec_of(const Trial& t) {
  auto spec = hw::ClusterSpecBuilder(
                  hw::ClusterSpec::multi_rail(t.nodes, t.ppn, t.hcas))
                  .sockets(t.sockets)
                  .build();
  spec.carry_data = true;
  spec.fault_plan = t.fault_plan;
  return spec;
}

/// The shape a world of this trial presents at time zero (all rails still
/// alive), used to honor registry applicability predicates without paying
/// for a throwaway cluster.
inline coll::CommShape shape_of(const Trial& t) {
  coll::CommShape s;
  s.comm_size = t.procs();
  s.nodes = t.nodes;
  s.ppn = t.ppn;
  s.hcas = t.hcas;
  s.sockets = t.sockets;
  s.world = true;
  s.healthy_hcas = t.hcas;
  return s;
}

/// Deterministic content byte for position `i` of rank `r`'s block (same
/// pattern as coll_testing.hpp, duplicated so this header stands alone).
inline std::byte content_byte(int r, std::size_t i) {
  return static_cast<std::byte>(
      (static_cast<std::size_t>(r) * 131 + i * 7 + 3) & 0xff);
}

/// Per-rank result payloads of one collective run.
using RankBytes = std::vector<std::vector<std::byte>>;

namespace detail {

inline sim::Task<void> ag_rank(mpi::Comm& comm, coll::AllgatherFn fn, int r,
                               hw::BufView send, hw::BufView recv,
                               std::size_t msg, bool in_place) {
  co_await fn(comm, r, send, recv, msg, in_place);
}

// Naive reference: rank 0 gathers every block point-to-point, then sends
// the assembled vector back out. Slow and boring on purpose — it exercises
// nothing but pt2pt, so a mismatch indicts the algorithm under test.
inline sim::Task<void> ref_rank(mpi::Comm& comm, int r, hw::BufView mine,
                                hw::BufView full, std::size_t msg) {
  if (msg == 0) co_return;
  const int p = comm.size();
  constexpr int kGatherTag = 9001;
  constexpr int kBcastTag = 9002;
  if (r == 0) {
    for (int src = 1; src < p; ++src) {
      co_await comm.recv(0, src, kGatherTag,
                         full.sub(static_cast<std::size_t>(src) * msg, msg));
    }
    for (int dst = 1; dst < p; ++dst) {
      co_await comm.send(0, dst, kBcastTag, full);
    }
  } else {
    co_await comm.send(r, 0, kGatherTag, mine);
    co_await comm.recv(r, 0, kBcastTag, full);
  }
}

inline RankBytes harvest(std::vector<hw::Buffer>& bufs) {
  RankBytes out;
  out.reserve(bufs.size());
  for (auto& b : bufs) {
    out.emplace_back(b.bytes(), b.bytes() + b.size());
  }
  return out;
}

}  // namespace detail

/// Run `fn` on the trial's (possibly faulted) world with its spans and
/// metrics delivered to `sink`; returns every rank's receive buffer.
inline RankBytes run_allgather(const coll::AllgatherFn& fn, const Trial& t,
                               obs::Sink& sink) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t), sink);
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t msg = t.msg;

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto recv = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    hw::Buffer send;
    if (t.in_place) {
      send = hw::Buffer::data(0);
      for (std::size_t i = 0; i < msg; ++i) {
        recv.bytes()[static_cast<std::size_t>(r) * msg + i] =
            content_byte(r, i);
      }
    } else {
      send = hw::Buffer::data(msg);
      for (std::size_t i = 0; i < msg; ++i) {
        send.bytes()[i] = content_byte(r, i);
      }
    }
    sends.push_back(std::move(send));
    recvs.push_back(std::move(recv));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::ag_rank(comm, fn, r,
                              sends[static_cast<std::size_t>(r)].view(),
                              recvs[static_cast<std::size_t>(r)].view(), msg,
                              t.in_place));
  }
  eng.run();
  return detail::harvest(recvs);
}

/// Tracer-pointer convenience (spans only; nullptr = no capture).
inline RankBytes run_allgather(const coll::AllgatherFn& fn, const Trial& t,
                               trace::Tracer* tracer = nullptr) {
  obs::CollectSink sink(tracer);
  return run_allgather(fn, t,
                       tracer != nullptr ? static_cast<obs::Sink&>(sink)
                                         : obs::null_sink());
}

/// Machine-readable stats block for failure messages: replays `fn` on the
/// trial under a collecting sink and returns the run's span count and
/// metrics as JSON, so a red CI log carries the observability capture
/// alongside the replay seed. (Replay is exact: same plan + same seed
/// produce byte-identical runs.)
inline std::string failure_stats(const coll::AllgatherFn& fn, const Trial& t) {
  trace::Tracer tracer;
  obs::Metrics metrics;
  std::vector<obs::ResourceSample> samples;
  obs::CollectSink sink(&tracer, &metrics, &samples);
  std::ostringstream os;
  os << "stats: {\"trial\": " << t.index << ", \"spans\": ";
  try {
    run_allgather(fn, t, sink);
    os << tracer.spans().size() << ", \"metrics\":\n";
    metrics.write_json(os);
    os << '}';
    // Utilization next to the raw counters: a degraded-rail failure should
    // show at a glance which rail went quiet (summary() calls them out).
    double wall = 0;
    for (const auto& s : tracer.spans()) {
      wall = std::max(wall, static_cast<double>(s.t1));
    }
    os << '\n'
       << obs::analyze_utilization(tracer.spans(), samples, wall).summary();
  } catch (const std::exception& e) {
    os << tracer.spans().size() << ", \"error\": \""
       << obs::json_escape(e.what()) << "\"}";
  }
  return os.str();
}

/// The naive gather+bcast reference result for this trial's shape, computed
/// on a FAULT-FREE world (faults must never change payload bytes, so the
/// healthy reference is the oracle for every fault category).
inline RankBytes reference_allgather(const Trial& t) {
  sim::Engine eng;
  auto spec = spec_of(t);
  spec.fault_plan.clear();
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t msg = t.msg;

  std::vector<hw::Buffer> mine, full;
  for (int r = 0; r < p; ++r) {
    auto m = hw::Buffer::data(msg);
    for (std::size_t i = 0; i < msg; ++i) m.bytes()[i] = content_byte(r, i);
    auto f = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    // Every rank seeds its own block; rank 0's gather fills the rest.
    for (std::size_t i = 0; i < msg; ++i) {
      f.bytes()[static_cast<std::size_t>(r) * msg + i] = content_byte(r, i);
    }
    mine.push_back(std::move(m));
    full.push_back(std::move(f));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::ref_rank(comm, r, mine[static_cast<std::size_t>(r)].view(),
                               full[static_cast<std::size_t>(r)].view(), msg));
  }
  eng.run();
  return detail::harvest(full);
}

/// First differing (rank, byte) between two results, or "" when identical.
inline std::string diff_results(const RankBytes& got, const RankBytes& want) {
  if (got.size() != want.size()) {
    return "rank-count mismatch: got " + std::to_string(got.size()) +
           " want " + std::to_string(want.size());
  }
  for (std::size_t r = 0; r < got.size(); ++r) {
    if (got[r].size() != want[r].size()) {
      return "rank " + std::to_string(r) + " size mismatch: got " +
             std::to_string(got[r].size()) + " want " +
             std::to_string(want[r].size());
    }
    for (std::size_t i = 0; i < got[r].size(); ++i) {
      if (got[r][i] != want[r][i]) {
        return "rank " + std::to_string(r) + " byte " + std::to_string(i) +
               ": got " + std::to_string(std::to_integer<int>(got[r][i])) +
               " want " + std::to_string(std::to_integer<int>(want[r][i]));
      }
    }
  }
  return {};
}

namespace detail {

inline sim::Task<void> ar_rank(mpi::Comm& comm, coll::AllreduceFn fn, int r,
                               hw::BufView data, std::size_t count,
                               mpi::Dtype dtype, mpi::ReduceOp op) {
  co_await fn(comm, r, data, count, dtype, op);
}

inline sim::Task<void> bc_rank(mpi::Comm& comm, coll::BcastFn fn, int r,
                               int root, hw::BufView data) {
  co_await fn(comm, r, root, data);
}

inline sim::Task<void> agv_rank(mpi::Comm& comm, coll::AllgathervFn fn, int r,
                                hw::BufView send, hw::BufView recv,
                                const coll::VarLayout& layout, bool in_place) {
  co_await fn(comm, r, send, recv, layout, in_place);
}

}  // namespace detail

/// Initial element value for allreduce trials: {1, 2} only, so sums, prods,
/// mins and maxes stay exact in every supported dtype (2^16 fits a float's
/// mantissa; int-valued floats make float/double reductions bit-exact).
inline int reduce_init(int r, std::size_t e) {
  return 1 + static_cast<int>((static_cast<std::size_t>(r) + e) & 1);
}

/// Run an allreduce of `count` elements of `dtype` on the trial's world;
/// returns every rank's final data buffer (raw bytes).
inline RankBytes run_allreduce(const coll::AllreduceFn& fn, const Trial& t,
                               std::size_t count, mpi::Dtype dtype,
                               mpi::ReduceOp op,
                               obs::Sink* sink = nullptr) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t),
                   sink != nullptr ? *sink : obs::null_sink());
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t bytes = count * mpi::dtype_size(dtype);

  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(bytes);
    for (std::size_t e = 0; e < count; ++e) {
      const int v = reduce_init(r, e);
      switch (dtype) {
        case mpi::Dtype::kByte:
          b.bytes()[e] = static_cast<std::byte>(v);
          break;
        case mpi::Dtype::kInt32:
          b.as<std::int32_t>()[e] = v;
          break;
        case mpi::Dtype::kInt64:
          b.as<std::int64_t>()[e] = v;
          break;
        case mpi::Dtype::kFloat:
          b.as<float>()[e] = static_cast<float>(v);
          break;
        case mpi::Dtype::kDouble:
          b.as<double>()[e] = static_cast<double>(v);
          break;
      }
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::ar_rank(comm, fn, r,
                              bufs[static_cast<std::size_t>(r)].view(), count,
                              dtype, op));
  }
  eng.run();
  return detail::harvest(bufs);
}

/// The exact expected value of element `e` after reducing `p` ranks.
inline std::int64_t reduce_expected(int p, std::size_t e, mpi::ReduceOp op) {
  std::int64_t acc = reduce_init(0, e);
  for (int r = 1; r < p; ++r) {
    const std::int64_t v = reduce_init(r, e);
    switch (op) {
      case mpi::ReduceOp::kSum: acc += v; break;
      case mpi::ReduceOp::kProd: acc *= v; break;
      case mpi::ReduceOp::kMax: acc = std::max(acc, v); break;
      case mpi::ReduceOp::kMin: acc = std::min(acc, v); break;
    }
  }
  return acc;
}

/// Run a root-0 bcast of `t.msg` bytes; returns every rank's buffer.
inline RankBytes run_bcast(const coll::BcastFn& fn, const Trial& t,
                           obs::Sink* sink = nullptr) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t),
                   sink != nullptr ? *sink : obs::null_sink());
  auto& comm = world.comm_world();
  const int p = comm.size();

  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(t.msg);
    if (r == 0) {
      for (std::size_t i = 0; i < t.msg; ++i) b.bytes()[i] = content_byte(0, i);
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::bc_rank(comm, fn, r, /*root=*/0,
                              bufs[static_cast<std::size_t>(r)].view()));
  }
  eng.run();
  return detail::harvest(bufs);
}

/// Run an allgatherv with the given per-rank counts; returns every rank's
/// receive buffer.
inline RankBytes run_allgatherv(const coll::AllgathervFn& fn, const Trial& t,
                                std::vector<std::size_t> counts,
                                obs::Sink* sink = nullptr) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t),
                   sink != nullptr ? *sink : obs::null_sink());
  auto& comm = world.comm_world();
  const int p = comm.size();
  const auto layout = coll::VarLayout::from_counts(std::move(counts));

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto send = hw::Buffer::data(layout.count(r));
    for (std::size_t i = 0; i < layout.count(r); ++i) {
      send.bytes()[i] = content_byte(r, i);
    }
    sends.push_back(std::move(send));
    recvs.push_back(hw::Buffer::data(layout.total));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::agv_rank(comm, fn, r,
                               sends[static_cast<std::size_t>(r)].view(),
                               recvs[static_cast<std::size_t>(r)].view(),
                               layout, /*in_place=*/false));
  }
  eng.run();
  return detail::harvest(recvs);
}

/// Expected allgatherv receive image for a layout.
inline std::vector<std::byte> allgatherv_expected(
    const coll::VarLayout& layout) {
  std::vector<std::byte> want(layout.total);
  for (std::size_t r = 0; r < layout.counts.size(); ++r) {
    for (std::size_t i = 0; i < layout.counts[r]; ++i) {
      want[layout.offsets[r] + i] = content_byte(static_cast<int>(r), i);
    }
  }
  return want;
}

// ---- Alltoall / Alltoallv / Reduce-scatter (the compositional planner's
// collectives) ----

/// Deterministic content byte `i` of the block rank `src` sends to rank
/// `dst` in an alltoall(v) exchange (distinct per ordered pair so a
/// misrouted block is caught, not just a corrupted one).
inline std::byte a2a_byte(int src, int dst, std::size_t i) {
  return content_byte(src * 31 + dst * 7 + 1, i);
}

namespace detail {

inline sim::Task<void> a2a_rank(mpi::Comm& comm, coll::AlltoallFn fn, int r,
                                hw::BufView send, hw::BufView recv,
                                std::size_t msg) {
  co_await fn(comm, r, send, recv, msg);
}

inline sim::Task<void> a2av_rank(mpi::Comm& comm, coll::AlltoallvFn fn, int r,
                                 hw::BufView send, hw::BufView recv,
                                 const coll::AlltoallvLayout& layout) {
  co_await fn(comm, r, send, recv, layout);
}

inline sim::Task<void> rs_rank(mpi::Comm& comm, coll::ReduceScatterFn fn,
                               int r, hw::BufView data, std::size_t count,
                               mpi::Dtype dtype, mpi::ReduceOp op) {
  co_await fn(comm, r, data, count, dtype, op);
}

}  // namespace detail

/// Run an alltoall of `msg` bytes per (src, dst) block on the trial's
/// world; returns every rank's receive buffer (one block per source).
inline RankBytes run_alltoall(const coll::AlltoallFn& fn, const Trial& t,
                              std::size_t msg, obs::Sink* sink = nullptr) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t),
                   sink != nullptr ? *sink : obs::null_sink());
  auto& comm = world.comm_world();
  const int p = comm.size();

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto send = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    for (int dst = 0; dst < p; ++dst) {
      for (std::size_t i = 0; i < msg; ++i) {
        send.bytes()[static_cast<std::size_t>(dst) * msg + i] =
            a2a_byte(r, dst, i);
      }
    }
    sends.push_back(std::move(send));
    recvs.push_back(hw::Buffer::data(msg * static_cast<std::size_t>(p)));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::a2a_rank(comm, fn, r,
                               sends[static_cast<std::size_t>(r)].view(),
                               recvs[static_cast<std::size_t>(r)].view(),
                               msg));
  }
  eng.run();
  return detail::harvest(recvs);
}

/// Expected alltoall receive image of every rank (rank r's buffer holds the
/// block from source s at offset s * msg).
inline RankBytes alltoall_expected(int p, std::size_t msg) {
  RankBytes want(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = want[static_cast<std::size_t>(r)];
    b.resize(msg * static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < msg; ++i) {
        b[static_cast<std::size_t>(src) * msg + i] = a2a_byte(src, r, i);
      }
    }
  }
  return want;
}

/// Run an alltoallv with the given pairwise count matrix
/// (`counts[i * p + j]` = bytes i sends to j); returns every rank's receive
/// buffer sized to its own recv_total.
inline RankBytes run_alltoallv(const coll::AlltoallvFn& fn, const Trial& t,
                               std::vector<std::size_t> counts,
                               obs::Sink* sink = nullptr) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t),
                   sink != nullptr ? *sink : obs::null_sink());
  auto& comm = world.comm_world();
  const int p = comm.size();
  const auto layout = coll::AlltoallvLayout::from_counts(p, std::move(counts));

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto send = hw::Buffer::data(layout.send_total(r));
    for (int dst = 0; dst < p; ++dst) {
      const std::size_t off = layout.send_offset(r, dst);
      for (std::size_t i = 0; i < layout.count(r, dst); ++i) {
        send.bytes()[off + i] = a2a_byte(r, dst, i);
      }
    }
    sends.push_back(std::move(send));
    recvs.push_back(hw::Buffer::data(layout.recv_total(r)));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::a2av_rank(comm, fn, r,
                                sends[static_cast<std::size_t>(r)].view(),
                                recvs[static_cast<std::size_t>(r)].view(),
                                layout));
  }
  eng.run();
  return detail::harvest(recvs);
}

/// Expected alltoallv receive image of every rank for a count matrix.
inline RankBytes alltoallv_expected(int p,
                                    const std::vector<std::size_t>& counts) {
  const auto layout = coll::AlltoallvLayout::from_counts(p, counts);
  RankBytes want(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& b = want[static_cast<std::size_t>(r)];
    b.resize(layout.recv_total(r));
    for (int src = 0; src < p; ++src) {
      const std::size_t off = layout.recv_offset(src, r);
      for (std::size_t i = 0; i < layout.count(src, r); ++i) {
        b[off + i] = a2a_byte(src, r, i);
      }
    }
  }
  return want;
}

/// Run a reduce-scatter of `count` elements on the trial's world; returns
/// every rank's full data buffer. Only rank r's owned element range
/// `coll::chunk_range(count, p, r)` is specified afterwards — check it with
/// `elem_value` against `reduce_expected`.
inline RankBytes run_reduce_scatter(const coll::ReduceScatterFn& fn,
                                    const Trial& t, std::size_t count,
                                    mpi::Dtype dtype, mpi::ReduceOp op,
                                    obs::Sink* sink = nullptr) {
  sim::Engine eng;
  mpi::World world(eng, spec_of(t),
                   sink != nullptr ? *sink : obs::null_sink());
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t bytes = count * mpi::dtype_size(dtype);

  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(bytes);
    for (std::size_t e = 0; e < count; ++e) {
      const int v = reduce_init(r, e);
      switch (dtype) {
        case mpi::Dtype::kByte:
          b.bytes()[e] = static_cast<std::byte>(v);
          break;
        case mpi::Dtype::kInt32:
          b.as<std::int32_t>()[e] = v;
          break;
        case mpi::Dtype::kInt64:
          b.as<std::int64_t>()[e] = v;
          break;
        case mpi::Dtype::kFloat:
          b.as<float>()[e] = static_cast<float>(v);
          break;
        case mpi::Dtype::kDouble:
          b.as<double>()[e] = static_cast<double>(v);
          break;
      }
    }
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(detail::rs_rank(comm, fn, r,
                              bufs[static_cast<std::size_t>(r)].view(), count,
                              dtype, op));
  }
  eng.run();
  return detail::harvest(bufs);
}

/// Element `e` of a raw result buffer as an exact integer (every conformance
/// value is int-valued by construction, so the cast is lossless).
inline std::int64_t elem_value(const std::vector<std::byte>& bytes,
                               std::size_t e, mpi::Dtype dtype) {
  switch (dtype) {
    case mpi::Dtype::kByte:
      return std::to_integer<std::int64_t>(bytes[e]);
    case mpi::Dtype::kInt32:
      return *reinterpret_cast<const std::int32_t*>(&bytes[e * 4]);
    case mpi::Dtype::kInt64:
      return *reinterpret_cast<const std::int64_t*>(&bytes[e * 8]);
    case mpi::Dtype::kFloat:
      return static_cast<std::int64_t>(
          *reinterpret_cast<const float*>(&bytes[e * 4]));
    case mpi::Dtype::kDouble:
      return static_cast<std::int64_t>(
          *reinterpret_cast<const double*>(&bytes[e * 8]));
  }
  return 0;
}

}  // namespace hmca::testing::conf
