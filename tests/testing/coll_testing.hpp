// Shared test utilities: run an Allgather/Allreduce in data mode and verify
// every rank's result byte-for-byte / element-for-element.
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "coll/allgather.hpp"
#include "hw/buffer.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "profiles/profiles.hpp"
#include "sim/engine.hpp"

namespace hmca::testing {

/// Deterministic content byte for position `i` of rank `r`'s block.
inline std::byte block_byte(int r, std::size_t i) {
  return static_cast<std::byte>((static_cast<std::size_t>(r) * 131 + i * 7 + 3) &
                                0xff);
}

// Coroutine parameters are taken by value: a reference parameter would
// dangle when a caller passes a temporary std::function and the coroutine
// suspends (the temporary dies at the end of the spawning full-expression).
inline sim::Task<void> ag_rank_program(mpi::Comm& comm, coll::AllgatherFn fn,
                                       int r, hw::BufView send,
                                       hw::BufView recv, std::size_t msg,
                                       bool in_place) {
  co_await fn(comm, r, send, recv, msg, in_place);
}

/// Run `fn` on a (nodes x ppn) cluster in data mode and EXPECT every rank's
/// recv buffer to contain all blocks in rank order. Returns virtual time.
inline double check_allgather(const coll::AllgatherFn& fn, int nodes, int ppn,
                              std::size_t msg, bool in_place = false) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();

  std::vector<hw::Buffer> sends, recvs;
  for (int r = 0; r < p; ++r) {
    auto recv = hw::Buffer::data(msg * static_cast<std::size_t>(p));
    hw::Buffer send;
    if (in_place) {
      send = hw::Buffer::data(0);
      for (std::size_t i = 0; i < msg; ++i) {
        recv.bytes()[static_cast<std::size_t>(r) * msg + i] = block_byte(r, i);
      }
    } else {
      send = hw::Buffer::data(msg);
      for (std::size_t i = 0; i < msg; ++i) send.bytes()[i] = block_byte(r, i);
    }
    sends.push_back(std::move(send));
    recvs.push_back(std::move(recv));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(ag_rank_program(comm, fn, r,
                              sends[static_cast<std::size_t>(r)].view(),
                              recvs[static_cast<std::size_t>(r)].view(), msg,
                              in_place));
  }
  eng.run();

  for (int r = 0; r < p; ++r) {
    const auto& recv = recvs[static_cast<std::size_t>(r)];
    for (int src = 0; src < p; ++src) {
      std::size_t bad = msg;  // first mismatching byte, msg = none
      for (std::size_t i = 0; i < msg; ++i) {
        if (recv.bytes()[static_cast<std::size_t>(src) * msg + i] !=
            block_byte(src, i)) {
          bad = i;
          break;
        }
      }
      EXPECT_EQ(bad, msg) << "rank " << r << " block " << src
                          << " first bad byte " << bad << " (nodes=" << nodes
                          << " ppn=" << ppn << " msg=" << msg << ")";
      if (bad != msg) return eng.now();
    }
  }
  return eng.now();
}

inline sim::Task<void> ar_rank_program(mpi::Comm& comm, profiles::AllreduceFn fn,
                                       int r, hw::BufView data,
                                       std::size_t count, mpi::Dtype dtype,
                                       mpi::ReduceOp op) {
  co_await fn(comm, r, data, count, dtype, op);
}

/// Run an Allreduce (int64 data, exact arithmetic) and EXPECT the reduction
/// on every rank. Element e of rank r starts as r + e*granularity-ish.
inline double check_allreduce(const profiles::AllreduceFn& fn, int nodes,
                              int ppn, std::size_t count, mpi::ReduceOp op) {
  auto spec = hw::ClusterSpec::thor(nodes, ppn);
  spec.carry_data = true;
  sim::Engine eng;
  mpi::World world(eng, spec);
  auto& comm = world.comm_world();
  const int p = comm.size();
  const std::size_t bytes = count * sizeof(std::int64_t);

  auto init = [](int r, std::size_t e) {
    return static_cast<std::int64_t>((r + 1) * ((e % 7) + 1) - 3);
  };

  std::vector<hw::Buffer> bufs;
  for (int r = 0; r < p; ++r) {
    auto b = hw::Buffer::data(bytes);
    for (std::size_t e = 0; e < count; ++e) b.as<std::int64_t>()[e] = init(r, e);
    bufs.push_back(std::move(b));
  }
  for (int r = 0; r < p; ++r) {
    eng.spawn(ar_rank_program(comm, fn, r, bufs[static_cast<std::size_t>(r)].view(),
                              count, mpi::Dtype::kInt64, op));
  }
  eng.run();

  for (std::size_t e = 0; e < count; ++e) {
    std::int64_t want = init(0, e);
    for (int r = 1; r < p; ++r) {
      switch (op) {
        case mpi::ReduceOp::kSum: want += init(r, e); break;
        case mpi::ReduceOp::kProd: want *= init(r, e); break;
        case mpi::ReduceOp::kMax: want = std::max(want, init(r, e)); break;
        case mpi::ReduceOp::kMin: want = std::min(want, init(r, e)); break;
      }
    }
    for (int r = 0; r < p; ++r) {
      const auto got = bufs[static_cast<std::size_t>(r)].as<std::int64_t>()[e];
      EXPECT_EQ(got, want) << "rank " << r << " elem " << e
                           << " (nodes=" << nodes << " ppn=" << ppn
                           << " count=" << count << ")";
      if (got != want) return eng.now();
    }
  }
  return eng.now();
}

}  // namespace hmca::testing
