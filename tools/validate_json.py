#!/usr/bin/env python3
"""Validate a JSON document against a schema from schemas/.

Shared by the --stats=json smoke check (schemas/stats.schema.json) and the
perf gate (schemas/bench.schema.json). Stdlib only (CI runners have no
jsonschema package), so this implements the small JSON-Schema subset those
schemas actually use: type, properties, required, items, enum, minItems,
minimum.
Unknown keywords are ignored, matching JSON-Schema semantics.

Benches print their latency tables and the stats block to the same stdout,
so this tool also accepts a full bench transcript: if the input is not pure
JSON it extracts the trailing object starting at the last line that is
exactly "{".

Usage: validate_json.py <schema.json> <document.json|bench-stdout>
Exit status 0 on success; 1 with a path-qualified message on the first
violation.
"""
import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
}


class ValidationError(Exception):
    pass


def _check_type(expected, value, path):
    if expected == "number":
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif expected == "integer":
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif expected == "null":
        ok = value is None
    else:
        ok = isinstance(value, _TYPES[expected])
    if not ok:
        raise ValidationError(
            f"{path}: expected {expected}, got {type(value).__name__}"
        )


def validate(schema, value, path="$"):
    if "type" in schema:
        _check_type(schema["type"], value, path)
    if "enum" in schema and value not in schema["enum"]:
        raise ValidationError(f"{path}: {value!r} not in {schema['enum']}")
    if (
        "minimum" in schema
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value < schema["minimum"]
    ):
        raise ValidationError(
            f"{path}: {value!r} < minimum {schema['minimum']}"
        )
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                raise ValidationError(f"{path}: missing required key '{name}'")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                validate(sub, value[name], f"{path}.{name}")
    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            raise ValidationError(
                f"{path}: {len(value)} items < minItems {schema['minItems']}"
            )
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                validate(item_schema, item, f"{path}[{i}]")


def extract_json(text):
    """The document, from a pure-JSON file or a full bench transcript."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    lines = text.splitlines()
    for i in range(len(lines) - 1, -1, -1):
        if lines[i] == "{":
            return json.loads("\n".join(lines[i:]))
    raise ValidationError("no JSON object found in input")


def summarize(doc):
    """One human line about the validated document, by known shape."""
    if "invocations" in doc:
        return f"{len(doc['invocations'])} invocations"
    if "scenarios" in doc:
        return f"{len(doc['scenarios'])} scenarios"
    if "tables" in doc:
        return f"{len(doc['tables'])} tables"
    return f"{len(doc)} top-level keys"


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    with open(argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    with open(argv[2], encoding="utf-8") as f:
        text = f.read()
    try:
        doc = extract_json(text)
        validate(schema, doc)
    except (ValidationError, json.JSONDecodeError) as e:
        print(f"validate_json: FAIL: {e}", file=sys.stderr)
        return 1
    print(f"validate_json: OK ({argv[2]}: {summarize(doc)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
